"""Tests for the cluster subsystem: routing keys, the router cache
tier, metric aggregation, and a live two-shard fleet.

The pure parts (routing keys, :class:`MemoryLru`, the Prometheus
combiner) are unit-tested directly.  The live tests spin ONE
``repro-cluster`` subprocess for the whole module (two shards, one
worker each, a test-private shared result cache) and verify the
behaviours a single-server test cannot: routed forwarding, the
router cache tier, the aggregated ``/metrics`` exposition, and
edge validation.  The heavier fleet properties — cluster-wide
single-flight, lossless rolling restart, graceful drain — live in
``repro.service.loadgen --mode cluster-smoke`` (the CI cluster-smoke
step), not here.
"""

import pytest

from repro.experiments.resultcache import MemoryLru
from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import ManagedCluster
from repro.service.protocol import ServiceError as ProtocolError
from repro.service.router import QUERY_PATHS, routing_key
from repro.telemetry.metrics import combine_prometheus_texts

SCALE = 0.02

REPLAY_PAYLOAD = {"spec": {"engine": "directory", "app": "water",
                           "policy": "basic", "cache_size": 64 * 1024,
                           "scale": SCALE}}


class TestRoutingKey:
    def test_stable_across_payload_ordering(self):
        shuffled = {"spec": dict(reversed(list(
            REPLAY_PAYLOAD["spec"].items()
        )))}
        assert (routing_key("/v1/replay", REPLAY_PAYLOAD)
                == routing_key("/v1/replay", shuffled))

    def test_distinct_specs_distinct_keys(self):
        other = {"spec": {**REPLAY_PAYLOAD["spec"],
                          "policy": "aggressive"}}
        assert (routing_key("/v1/replay", REPLAY_PAYLOAD)
                != routing_key("/v1/replay", other))

    def test_defaulted_fields_normalise(self):
        # A spec that spells out a default routes like one that omits
        # it: the key hashes the *parsed* spec, not the raw JSON.
        from repro.service.protocol import parse_replay_request

        spec = parse_replay_request(REPLAY_PAYLOAD)
        spelled = {"spec": spec.to_payload()}
        assert (routing_key("/v1/replay", REPLAY_PAYLOAD)
                == routing_key("/v1/replay", spelled))

    def test_each_query_path_parses(self):
        payloads = {
            "/v1/replay": REPLAY_PAYLOAD,
            "/v1/compare": {"policies": ["conventional", "basic"],
                            "spec": {"app": "water",
                                     "cache_size": 64 * 1024,
                                     "scale": SCALE}},
            "/v1/experiment": {"name": "table2", "scale": SCALE,
                               "apps": ["water"]},
            "/v1/verify": {"engine": "bus", "protocol": "mesi"},
        }
        keys = {path: routing_key(path, payloads[path])
                for path in QUERY_PATHS}
        assert len(set(keys.values())) == len(QUERY_PATHS)
        for key in keys.values():
            assert len(key) == 24
            int(key, 16)  # hex digest prefix

    def test_invalid_spec_raises_at_the_edge(self):
        with pytest.raises(ProtocolError):
            routing_key("/v1/replay", {"spec": {"app": "doom"}})
        with pytest.raises(ProtocolError):
            routing_key("/v1/verify", {"engine": "bus",
                                       "protocol": "nonesuch"})


class TestMemoryLru:
    def test_miss_then_hit(self):
        lru = MemoryLru(capacity=2)
        assert lru.get("a") is None
        lru.put("a", {"x": 1})
        assert lru.get("a") == {"x": 1}
        assert lru.stats() == {"entries": 1, "capacity": 2, "hits": 1,
                               "misses": 1, "evictions": 0}

    def test_lru_eviction_order(self):
        lru = MemoryLru(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")        # refresh a: b is now least recent
        lru.put("c", 3)
        assert "a" in lru and "c" in lru
        assert "b" not in lru
        assert lru.evictions == 1

    def test_unbounded_never_evicts(self):
        lru = MemoryLru()
        for i in range(500):
            lru.put(f"k{i}", i)
        assert len(lru) == 500
        assert lru.evictions == 0

    def test_clear(self):
        lru = MemoryLru(capacity=4)
        lru.put("a", 1)
        lru.clear()
        assert len(lru) == 0
        assert "a" not in lru

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            MemoryLru(capacity=0)


class TestCombineMetrics:
    A = ("# HELP repro_x total x\n# TYPE repro_x counter\n"
         'repro_x{kind="directory"} 3\nrepro_up 1\n')
    B = ("# HELP repro_x total x\n# TYPE repro_x counter\n"
         'repro_x{kind="directory"} 4\n')

    def test_relabels_and_dedupes_families(self):
        text = combine_prometheus_texts([("shard-0", self.A),
                                         ("shard-1", self.B)])
        assert text.count("# HELP repro_x") == 1
        assert text.count("# TYPE repro_x") == 1
        assert 'repro_x{shard="shard-0",kind="directory"} 3' in text
        assert 'repro_x{shard="shard-1",kind="directory"} 4' in text
        assert 'repro_up{shard="shard-0"} 1' in text

    def test_deterministic_whatever_the_order(self):
        forward = combine_prometheus_texts([("shard-0", self.A),
                                            ("shard-1", self.B)])
        backward = combine_prometheus_texts([("shard-1", self.B),
                                             ("shard-0", self.A)])
        assert forward == backward

    def test_sums_via_metric_value(self):
        from repro.service.client import metric_value, parse_metrics_text

        text = combine_prometheus_texts([("shard-0", self.A),
                                         ("shard-1", self.B)])
        samples = parse_metrics_text(text)
        assert metric_value(samples, "repro_x", kind="directory") == 7
        assert metric_value(samples, "repro_x", shard="shard-1") == 4


# ----------------------------------------------------------------------
# Live fleet
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """One two-shard fleet for every live test in this module."""
    cache_dir = tmp_path_factory.mktemp("cluster-results")
    fleet = ManagedCluster(shards=2, max_queue=16, jobs=1,
                           cache_dir=str(cache_dir), router_cache=64,
                           replicas=2)
    fleet.start()
    yield fleet
    assert fleet.stop() == 0


@pytest.fixture(scope="module")
def client(cluster):
    return ServiceClient("127.0.0.1", cluster.port)


class TestLiveCluster:
    def test_healthz_identifies_the_router(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["role"] == "cluster-router"

    def test_replay_roundtrip_then_router_tier_hit(self, client):
        spec = dict(engine="directory", app="water", policy="basic",
                    cache_size=64 * 1024, scale=SCALE)
        first = client.replay(**spec)
        assert first["type"] == "replay"
        assert first["cached"] is False
        assert "tier" not in first
        second = client.replay(**spec)
        assert second["cached"] is True
        assert second["tier"] == "router"
        assert second["result"] == first["result"]

    def test_cluster_status_shape(self, client):
        status = client.cluster_status()
        assert status["type"] == "cluster-status"
        assert len(status["shards"]) == 2
        for shard in status["shards"]:
            assert shard["healthy"] is True
            assert shard["restarts"] == 0
        assert status["ring"]["shards"] == ["shard-0", "shard-1"]
        assert abs(sum(status["ring"]["shares"].values()) - 1.0) < 0.01
        assert status["router_cache"]["capacity"] == 64
        assert status["replicas"] == 2

    def test_combined_metrics_labels_every_member(self, client):
        status, headers, text = client.request("GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert 'shard="router"' in text
        assert 'shard="shard-0"' in text
        assert 'shard="shard-1"' in text

    def test_bad_spec_rejected_at_the_edge(self, client):
        before = sum(s["forwards"]
                     for s in client.cluster_status()["shards"])
        with pytest.raises(ServiceError) as excinfo:
            client.replay(app="doom")
        assert excinfo.value.status == 400
        after = sum(s["forwards"]
                    for s in client.cluster_status()["shards"])
        assert after == before  # never reached a shard

    def test_unknown_path_404(self, client):
        status, _, payload = client.request("GET", "/v2/anything")
        assert status == 404
        assert payload["type"] == "error"
