"""Tests for the invalidation-pattern experiment (Weber & Gupta)."""

import pytest

from repro.experiments import common, inval_patterns


@pytest.fixture(autouse=True, scope="module")
def _fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


@pytest.fixture(scope="module")
def rows():
    return inval_patterns.run(
        apps=("mp3d", "pthor"), cache_size=None, scale=0.2, num_procs=8
    )


class TestInvalPatterns:
    def test_single_copy_invalidations_dominate_conventionally(self, rows):
        """Weber & Gupta's core observation, reproduced."""
        for row in rows:
            if row.protocol == "conventional":
                assert row.share(1) > 0.7, row

    def test_adaptation_consumes_single_copy_invalidations(self, rows):
        by_key = {(r.app, r.protocol): r for r in rows}
        for app in ("mp3d", "pthor"):
            conv = by_key[(app, "conventional")]
            aggr = by_key[(app, "aggressive")]
            conv_singles = conv.by_size.get(1, 0)
            aggr_singles = aggr.by_size.get(1, 0)
            assert aggr_singles < conv_singles, app

    def test_single_copy_invalidations_cut_hardest(self, rows):
        """Adaptation targets migratory (single-copy) hand-offs; wide
        invalidations belong to other sharing patterns and shrink far
        less (they fall somewhat because migrated blocks replicate
        less before the next write)."""
        by_key = {(r.app, r.protocol): r for r in rows}
        conv = by_key[("pthor", "conventional")]
        aggr = by_key[("pthor", "aggressive")]
        conv_wide = sum(v for k, v in conv.by_size.items() if k != 1)
        aggr_wide = sum(v for k, v in aggr.by_size.items() if k != 1)
        singles_cut = 1 - aggr.by_size[1] / conv.by_size[1]
        wide_cut = 1 - aggr_wide / conv_wide if conv_wide else 0.0
        assert singles_cut > wide_cut

    def test_shares_sum_to_one(self, rows):
        for row in rows:
            if row.total_invalidations:
                total = sum(
                    row.share(b) for b in (1, 2, 3, "4+")
                )
                assert total == pytest.approx(1.0)

    def test_render(self, rows):
        text = inval_patterns.render(rows)
        assert "1 copy %" in text and "mp3d" in text
