"""Unit tests for the shared synchronized data structures."""

from repro.common.types import Op
from repro.workloads.engine import Engine, Heap
from repro.workloads.sync import SharedCounter, SharedRecord, SharedTaskQueue


def drive(num_procs, make_worker, seed=0):
    engine = Engine(num_procs, seed=seed)
    for proc in range(num_procs):
        engine.spawn(proc, make_worker(proc))
    return engine.run()


class TestSharedCounter:
    def test_fetch_add_returns_previous(self):
        heap = Heap()
        counter = SharedCounter(heap, "c")
        seen = []

        def worker(proc):
            for _ in range(5):
                old = yield from counter.fetch_add()
                seen.append(old)

        drive(3, worker)
        assert sorted(seen) == list(range(15))
        assert counter.value == 15

    def test_traffic_is_read_then_write(self):
        heap = Heap()
        counter = SharedCounter(heap, "c")

        def worker(proc):
            yield from counter.fetch_add()

        trace = drive(2, worker)
        ops = [a.op for a in trace]
        assert ops == [Op.READ, Op.WRITE] * 2
        assert all(a.addr == counter.addr for a in trace)

    def test_counter_is_migratory_under_contention(self):
        """The counter block must be detected migratory by the protocol."""
        from repro.common.config import CacheConfig, MachineConfig
        from repro.directory.policy import BASIC
        from repro.system.machine import DirectoryMachine

        heap = Heap()
        counter = SharedCounter(heap, "c")

        def worker(proc):
            for _ in range(10):
                yield from counter.fetch_add()

        trace = drive(4, worker, seed=3)
        cfg = MachineConfig(
            num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
        )
        m = DirectoryMachine(cfg, BASIC, check=True)
        m.run(trace)
        assert m.protocol.is_migratory(counter.addr // 16)


class TestSharedTaskQueue:
    def test_fifo_order_single_thread(self):
        heap = Heap()
        q = SharedTaskQueue(heap, "q", capacity=8)
        popped = []

        def worker(proc):
            for i in range(5):
                yield from q.push(i)
            while True:
                item = yield from q.pop()
                if item is None:
                    return
                popped.append(item)

        drive(1, worker)
        assert popped == [0, 1, 2, 3, 4]

    def test_items_conserved_across_threads(self):
        heap = Heap()
        q = SharedTaskQueue(heap, "q", capacity=128)
        q.preload(range(40))
        got = []

        def worker(proc):
            while True:
                item = yield from q.pop()
                if item is None:
                    return
                got.append(item)

        drive(4, worker, seed=5)
        assert sorted(got) == list(range(40))
        assert len(q) == 0

    def test_push_many_single_lock(self):
        heap = Heap()
        q = SharedTaskQueue(heap, "q")

        def worker(proc):
            yield from q.push_many([1, 2, 3])

        trace = drive(1, worker)
        # 1 tail read + 3 slot writes + 1 tail write
        assert len(trace) == 5

    def test_pop_empty_returns_none_and_reads_control(self):
        heap = Heap()
        q = SharedTaskQueue(heap, "q")
        results = []

        def worker(proc):
            item = yield from q.pop()
            results.append(item)

        trace = drive(1, worker)
        assert results == [None]
        assert len(trace) == 2  # head + tail reads

    def test_slots_wrap(self):
        heap = Heap()
        q = SharedTaskQueue(heap, "q", capacity=4)

        def worker(proc):
            for i in range(10):
                yield from q.push(i)
                item = yield from q.pop()
                assert item == i

        drive(1, worker)

    def test_preload_generates_no_trace(self):
        heap = Heap()
        q = SharedTaskQueue(heap, "q")
        q.preload(range(10))
        assert len(q) == 10


class TestSharedRecord:
    def test_update_pattern(self):
        heap = Heap()
        rec = SharedRecord(heap, "r", nwords=3)

        def worker(proc):
            yield from rec.update()

        trace = drive(1, worker)
        ops = [a.op for a in trace]
        assert ops == [Op.READ] * 3 + [Op.WRITE] * 3
        addrs = {a.addr for a in trace}
        assert addrs == {rec.addr, rec.addr + 4, rec.addr + 8}

    def test_partial_update(self):
        heap = Heap()
        rec = SharedRecord(heap, "r", nwords=4)

        def worker(proc):
            yield from rec.update(read_words=2, write_words=1)

        trace = drive(1, worker)
        assert len(trace) == 3

    def test_read_only(self):
        heap = Heap()
        rec = SharedRecord(heap, "r", nwords=2)

        def worker(proc):
            yield from rec.read_only()

        trace = drive(1, worker)
        assert all(a.op is Op.READ for a in trace)
