"""The ``step_hook`` contract on the table-driven kernel path.

Mirrors ``tests/test_step_hook_contract.py`` for the kernel replays of
:mod:`repro.kernels`: a hook installed *before* ``run`` keeps both
machines off the kernel (and off the packed loop) entirely, while a
hook that sneaks in mid-replay — after the kernel has already summed
the whole trace — must fail loudly on both machines, with an error
naming the kernel path.
"""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import ProtocolError
from repro.common.types import Access, Op
from repro.directory.policy import BASIC
from repro.kernels import registry
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import MesiProtocol
from repro.system.machine import DirectoryMachine
from repro.system.placement import RoundRobinPlacement
from repro.trace.core import Trace

NUM_PROCS = 4


def _trace() -> Trace:
    accesses = []
    for round_no in range(8):
        for proc in range(NUM_PROCS):
            accesses.append(Access(proc, Op.READ, 16 * proc))
            accesses.append(Access(proc, Op.WRITE, 16 * proc))
            accesses.append(Access(proc, Op.READ, 0))
            if round_no % 2:
                accesses.append(Access(proc, Op.WRITE, 0))
    return Trace(accesses, name="kernel-hook-contract")


def _config() -> MachineConfig:
    return MachineConfig(
        num_procs=NUM_PROCS,
        cache=CacheConfig(size_bytes=None, block_size=16),
    )


class _SneakyPacked:
    """Packed-trace proxy that installs a hook when the kernel splits
    the trace into per-block sequences (its first trace-shaped read)."""

    def __init__(self, inner, machine):
        self._inner = inner
        self._machine = machine

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def block_sequences(self, block_shift):
        if self._machine.step_hook is None:
            self._machine.step_hook = lambda m, p, b: None
        return self._inner.block_sequences(block_shift)


class _SneakyTrace(Trace):
    """Trace whose pack() hands the kernel the hook-installing proxy."""

    machine = None

    def pack(self):
        return _SneakyPacked(super().pack(), self.machine)


class TestMidReplayInstallRejected:
    """Both kernels detect a hook that appeared during the replay and
    raise instead of returning stats the hook never observed."""

    def test_directory_kernel_raises(self, monkeypatch):
        machine = DirectoryMachine(_config(), BASIC)
        original = RoundRobinPlacement.home

        def sneaky_home(self, page, accessor):
            if machine.step_hook is None:
                machine.step_hook = lambda m, p, b: None
            return original(self, page, accessor)

        # The kernel requires the exactly-shipped placement type, so the
        # hook is smuggled in through the class, not a subclass.
        monkeypatch.setattr(RoundRobinPlacement, "home", sneaky_home)
        with pytest.raises(ProtocolError, match="table-driven kernel"):
            machine.run(_trace())

    def test_bus_kernel_raises(self):
        machine = BusMachine(_config(), MesiProtocol())
        trace = _SneakyTrace(list(_trace()), name="kernel-hook-contract")
        trace.machine = machine
        with pytest.raises(ProtocolError, match="table-driven kernel"):
            machine.run(trace)

    def test_both_errors_match_the_packed_contract(self, monkeypatch):
        # The legacy packed loop advertises the same condition with
        # "mid-replay"; the kernel message must keep matching it so
        # callers can catch either path uniformly.
        machine = DirectoryMachine(_config(), BASIC)
        original = RoundRobinPlacement.home

        def sneaky_home(self, page, accessor):
            if machine.step_hook is None:
                machine.step_hook = lambda m, p, b: None
            return original(self, page, accessor)

        monkeypatch.setattr(RoundRobinPlacement, "home", sneaky_home)
        with pytest.raises(ProtocolError, match="mid-replay"):
            machine.run(_trace())


class TestPreInstalledHookBypassesKernel:
    """A hook given to the constructor keeps the machine on the generic
    per-access path: the kernel never engages and every statistic still
    matches the kernel replay bit for bit."""

    def test_directory(self):
        kernel = DirectoryMachine(_config(), BASIC)
        registry.engagements.clear()
        kernel.run(_trace())
        assert registry.engagements["directory"] == 1

        seen = []
        hooked = DirectoryMachine(
            _config(), BASIC,
            step_hook=lambda m, p, b: seen.append((p, b)),
        )
        registry.engagements.clear()
        hooked.run(_trace())
        assert registry.engagements["directory"] == 0
        assert seen
        assert hooked.cache_stats == kernel.cache_stats
        assert hooked.stats.short == kernel.stats.short
        assert hooked.stats.data == kernel.stats.data

    def test_bus(self):
        kernel = BusMachine(_config(), MesiProtocol())
        registry.engagements.clear()
        kernel.run(_trace())
        assert registry.engagements["bus"] == 1

        seen = []
        hooked = BusMachine(
            _config(), MesiProtocol(),
            step_hook=lambda m, p, b: seen.append((p, b)),
        )
        registry.engagements.clear()
        hooked.run(_trace())
        assert registry.engagements["bus"] == 0
        assert seen
        assert hooked.cache_stats == kernel.cache_stats
        assert hooked.bus_stats.by_kind == kernel.bus_stats.by_kind
