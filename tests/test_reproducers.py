"""Replay every checked-in reproducer artifact through the oracle.

``tests/reproducers/`` holds fuzz cases serialized by
:mod:`repro.conformance.artifacts` — traces that once mattered: either
interesting geometry/pattern combinations checked in as regression
seeds, or (after a real bug) the shrunk reproducer of the fix.  Every
one must replay clean through every shipped engine forever; a failure
here means a protocol or fast-path change reintroduced an old problem.

To add one after fixing a bug, copy the shrunk artifact directory that
``repro-fuzz`` wrote out of ``repro-fuzz-artifacts/`` into
``tests/reproducers/`` and clear the recorded failure from its
``case.json`` once the fix lands (checked-in artifacts document the
now-passing behaviour).
"""

from pathlib import Path

import pytest

from repro.conformance.artifacts import iter_reproducers
from repro.conformance.oracle import run_case

REPRODUCER_DIR = Path(__file__).parent / "reproducers"

REPRODUCERS = list(iter_reproducers(REPRODUCER_DIR))


def test_reproducer_corpus_is_seeded():
    assert len(REPRODUCERS) >= 3


@pytest.mark.parametrize(
    "path,case,sidecar",
    REPRODUCERS,
    ids=[path.name for path, _, _ in REPRODUCERS],
)
def test_reproducer_replays_clean(path, case, sidecar):
    failure = run_case(case)
    assert failure is None, f"{path.name}: {failure}"


@pytest.mark.parametrize(
    "path,case,sidecar",
    REPRODUCERS,
    ids=[path.name for path, _, _ in REPRODUCERS],
)
def test_checked_in_artifacts_record_no_open_failure(path, case, sidecar):
    # A checked-in artifact with a recorded failure would mean someone
    # committed a reproducer before fixing the bug it demonstrates.
    assert sidecar["failure"] is None, (
        f"{path.name} records an unfixed failure: {sidecar['failure']}"
    )
