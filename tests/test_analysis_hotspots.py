"""Tests for traffic attribution and hot-block reporting."""

import pytest

from repro.analysis.classify import SharingPattern
from repro.analysis.hotspots import (
    hot_blocks,
    render_traffic,
    traffic_by_pattern,
)
from repro.common.config import CacheConfig, MachineConfig
from repro.directory.policy import BASIC, CONVENTIONAL
from repro.system.machine import DirectoryMachine
from repro.trace import synth


def run_machine(trace, policy=CONVENTIONAL, track=True):
    cfg = MachineConfig(
        num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
    )
    machine = DirectoryMachine(cfg, policy, track_blocks=track)
    machine.run(trace)
    return machine


@pytest.fixture(scope="module")
def mixed_trace():
    return synth.interleave(
        [
            synth.migratory(num_procs=4, num_objects=4, visits=40, seed=1),
            synth.read_shared(num_procs=4, num_objects=4, rounds=15,
                              base=1 << 16, seed=2),
        ],
        chunk=4,
        seed=3,
    )


class TestTrafficAttribution:
    def test_requires_tracking(self, mixed_trace):
        machine = run_machine(mixed_trace, track=False)
        with pytest.raises(ValueError):
            traffic_by_pattern(machine, list(mixed_trace))

    def test_totals_match_machine(self, mixed_trace):
        machine = run_machine(mixed_trace)
        result = traffic_by_pattern(machine, list(mixed_trace))
        assert result.total == machine.stats.total

    def test_migratory_blocks_dominate_traffic(self, mixed_trace):
        """In this mix, migratory data causes most of the messages —
        the paper's motivating observation."""
        machine = run_machine(mixed_trace)
        result = traffic_by_pattern(machine, list(mixed_trace))
        assert result.fraction(SharingPattern.MIGRATORY) > 0.5

    def test_adaptive_removes_migratory_share(self, mixed_trace):
        conv = traffic_by_pattern(
            run_machine(mixed_trace, CONVENTIONAL), list(mixed_trace)
        )
        adapt = traffic_by_pattern(
            run_machine(mixed_trace, BASIC), list(mixed_trace)
        )
        conv_mig = conv.messages_by_pattern.get(SharingPattern.MIGRATORY, 0)
        adapt_mig = adapt.messages_by_pattern.get(SharingPattern.MIGRATORY, 0)
        assert adapt_mig < 0.7 * conv_mig
        # non-migratory traffic is untouched
        conv_other = conv.total - conv_mig
        adapt_other = adapt.total - adapt_mig
        assert adapt_other == conv_other

    def test_fraction_empty(self):
        from repro.analysis.hotspots import TrafficByPattern

        empty = TrafficByPattern({}, 0)
        assert empty.fraction(SharingPattern.MIGRATORY) == 0.0

    def test_render(self, mixed_trace):
        machine = run_machine(mixed_trace)
        text = render_traffic(
            traffic_by_pattern(machine, list(mixed_trace)), "traffic"
        )
        assert "migratory" in text and "share %" in text


class TestHotBlocks:
    def test_sorted_by_messages(self, mixed_trace):
        machine = run_machine(mixed_trace)
        report = hot_blocks(machine, list(mixed_trace), top=5)
        assert len(report) == 5
        counts = [h.messages for h in report]
        assert counts == sorted(counts, reverse=True)

    def test_hottest_block_is_migratory(self, mixed_trace):
        machine = run_machine(mixed_trace)
        report = hot_blocks(machine, list(mixed_trace), top=1)
        assert report[0].pattern is SharingPattern.MIGRATORY

    def test_requires_tracking(self, mixed_trace):
        machine = run_machine(mixed_trace, track=False)
        with pytest.raises(ValueError):
            hot_blocks(machine, list(mixed_trace))
