"""Tests for experiment result persistence and comparison."""

from dataclasses import dataclass

import pytest

from repro.experiments.results import (
    ResultError,
    compare_results,
    load_results,
    rows_to_payload,
    save_results,
)


@dataclass(frozen=True)
class DemoRow:
    app: str
    protocol: str
    total: int
    reduction_pct: float


ROWS = [
    DemoRow("mp3d", "basic", 1000, 45.0),
    DemoRow("mp3d", "aggressive", 900, 50.5),
]


class TestSerialisation:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "r.json"
        save_results(path, "demo", ROWS, scale=0.5, seed=7)
        payload = load_results(path)
        assert payload["experiment"] == "demo"
        assert payload["scale"] == 0.5
        assert payload["seed"] == 7
        assert payload["rows"][0]["app"] == "mp3d"
        assert payload["rows"][1]["total"] == 900

    def test_extra_metadata(self, tmp_path):
        path = tmp_path / "r.json"
        save_results(path, "demo", ROWS, extra={"git": "abc123"})
        assert load_results(path)["extra"]["git"] == "abc123"

    def test_non_dataclass_rejected(self):
        with pytest.raises(ResultError):
            rows_to_payload("demo", [{"not": "a dataclass"}])

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ResultError):
            load_results(path)

    def test_load_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"experiment": "x"}')
        with pytest.raises(ResultError):
            load_results(path)

    def test_real_experiment_rows_serialise(self, tmp_path):
        from repro.experiments import common, table3

        common.clear_caches()
        rows = table3.run(apps=("mp3d",), block_sizes=(16,), scale=0.1,
                          num_procs=4)
        # Table rows hold nested cell dataclasses; they stringify safely.
        payload = rows_to_payload("table3", rows, scale=0.1)
        assert payload["rows"][0]["app"] == "mp3d"


class TestComparison:
    def payload(self, rows, name="demo"):
        return rows_to_payload(name, rows)

    def test_identical_ok(self):
        problems = compare_results(
            self.payload(ROWS), self.payload(ROWS),
            keys=("app", "protocol"), numeric_fields=("total",),
        )
        assert problems == []

    def test_drift_detected(self):
        drifted = [
            DemoRow("mp3d", "basic", 2000, 45.0),
            DemoRow("mp3d", "aggressive", 900, 50.5),
        ]
        problems = compare_results(
            self.payload(ROWS), self.payload(drifted),
            keys=("app", "protocol"), numeric_fields=("total",),
        )
        assert len(problems) == 1
        assert "drifted" in problems[0]

    def test_small_drift_tolerated(self):
        nudged = [
            DemoRow("mp3d", "basic", 1020, 45.0),
            DemoRow("mp3d", "aggressive", 900, 50.5),
        ]
        problems = compare_results(
            self.payload(ROWS), self.payload(nudged),
            keys=("app", "protocol"), numeric_fields=("total",),
            tolerance_pct=5.0,
        )
        assert problems == []

    def test_added_and_removed_rows(self):
        fewer = [ROWS[0]]
        problems = compare_results(
            self.payload(ROWS), self.payload(fewer),
            keys=("app", "protocol"), numeric_fields=("total",),
        )
        assert any("disappeared" in p for p in problems)

    def test_experiment_mismatch(self):
        problems = compare_results(
            self.payload(ROWS, "a"), self.payload(ROWS, "b"),
            keys=("app",), numeric_fields=("total",),
        )
        assert "different experiments" in problems[0]
