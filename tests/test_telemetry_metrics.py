"""The telemetry metrics registry: families, labels, merge, rendering."""

import pytest

from repro.common.errors import TelemetryError
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    merge_dicts,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        counter = reg.counter("c", "help text")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_labeled_series_are_independent(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(engine="a")
        counter.inc(5, engine="b")
        assert counter.value(engine="a") == 1
        assert counter.value(engine="b") == 5
        assert counter.value(engine="missing") == 0

    def test_label_order_is_canonicalized(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(b="2", a="1") == 2

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(TelemetryError):
            counter.inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value() == 2

    def test_inc_may_go_down(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.inc(3)
        gauge.inc(-5)
        assert gauge.value() == -2


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 5.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            hist.observe(value)
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(104.5)
        # Bucket bounds are inclusive (Prometheus ``le`` semantics).
        cells = hist.series[()]
        assert cells[0] == 2  # 0.5 and 1.0
        assert cells[1] == 1  # 3.0
        assert cells[2] == 1  # 100.0 -> +Inf

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().histogram("h", buckets=())


class TestRegistry:
    def test_families_memoized_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TelemetryError):
            reg.gauge("m")

    def test_histogram_bucket_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(TelemetryError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("c").inc(100)
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert NULL_REGISTRY.families() == []


def _sample_registry(scale: int) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_steps_total", "steps").inc(10 * scale, engine="d")
    reg.counter("repro_steps_total", "steps").inc(3 * scale, engine="b")
    reg.gauge("repro_migratory_blocks", "blocks").set(7 * scale, engine="d")
    hist = reg.histogram("repro_span_seconds", "spans")
    hist.observe(0.002 * scale, span="replay")
    hist.observe(2.0, span="replay")
    return reg


class TestMergeAndSerialization:
    def test_roundtrip_through_dict(self):
        reg = _sample_registry(1)
        clone = MetricsRegistry.from_dict(reg.to_dict())
        assert clone.render_prometheus() == reg.render_prometheus()

    def test_counters_sum_gauges_max_histograms_sum(self):
        merged = merge_dicts(
            [_sample_registry(1).to_dict(), _sample_registry(2).to_dict()]
        )
        assert merged.counter("repro_steps_total").value(engine="d") == 30
        assert merged.gauge("repro_migratory_blocks").value(engine="d") == 14
        assert merged.histogram("repro_span_seconds").count(span="replay") == 4

    def test_merge_is_order_independent(self):
        payloads = [_sample_registry(s).to_dict() for s in (1, 2, 3)]
        forward = merge_dicts(payloads).render_prometheus()
        backward = merge_dicts(reversed(payloads)).render_prometheus()
        assert forward == backward

    def test_merge_partitions_equal_whole(self):
        """Any worker partition folds to the same registry (the --jobs
        determinism contract)."""
        parts = [_sample_registry(s).to_dict() for s in (1, 2, 3, 4)]
        whole = merge_dicts(parts).render_prometheus()
        split = merge_dicts(
            [merge_dicts(parts[:2]).to_dict(), merge_dicts(parts[2:]).to_dict()]
        ).render_prometheus()
        assert whole == split

    def test_unknown_kind_rejected(self):
        with pytest.raises(TelemetryError):
            merge_dicts([{"m": {"kind": "summary", "series": []}}])

    def test_histogram_shape_mismatch_rejected(self):
        one = MetricsRegistry()
        one.histogram("h", buckets=(1.0,)).observe(0.5)
        other = {"h": {"kind": "histogram", "buckets": [1.0, 2.0],
                       "series": [[[], [1.0, 0.0, 0.0, 0.5]]]}}
        with pytest.raises(TelemetryError):
            one.merge_dict(other)


class TestPrometheusRendering:
    def test_text_format_shape(self):
        text = _sample_registry(1).render_prometheus()
        assert "# TYPE repro_steps_total counter" in text
        assert 'repro_steps_total{engine="d"} 10' in text
        assert "# TYPE repro_span_seconds histogram" in text
        assert 'repro_span_seconds_bucket{le="+Inf",span="replay"} 2' in text
        assert 'repro_span_seconds_count{span="replay"} 2' in text
        assert text.endswith("\n")

    def test_rendering_is_deterministic(self):
        assert (_sample_registry(2).render_prometheus()
                == _sample_registry(2).render_prometheus())

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_default_buckets_are_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS
