"""Unit tests for network topologies and the topology experiment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.interconnect.topology import (
    Crossbar,
    Hypercube,
    Mesh2D,
    Ring,
    standard_topologies,
)


class TestCrossbar:
    def test_unit_distance(self):
        xbar = Crossbar(8)
        assert xbar.hops(0, 0) == 0
        assert xbar.hops(0, 7) == 1
        assert xbar.average_hops == 1.0
        assert xbar.diameter == 1

    def test_bounds_checked(self):
        with pytest.raises(ConfigError):
            Crossbar(4).hops(0, 4)


class TestRing:
    def test_wraps_shortest_way(self):
        ring = Ring(8)
        assert ring.hops(0, 1) == 1
        assert ring.hops(0, 7) == 1  # around the back
        assert ring.hops(0, 4) == 4
        assert ring.diameter == 4

    def test_symmetric(self):
        ring = Ring(7)
        for a in range(7):
            for b in range(7):
                assert ring.hops(a, b) == ring.hops(b, a)


class TestMesh:
    def test_manhattan_distance(self):
        mesh = Mesh2D(4, 4)
        assert mesh.hops(0, 3) == 3  # along the top row
        assert mesh.hops(0, 15) == 6  # opposite corner
        assert mesh.hops(5, 10) == 2
        assert mesh.diameter == 6

    def test_name_and_size(self):
        mesh = Mesh2D(2, 8)
        assert mesh.num_nodes == 16
        assert mesh.name == "mesh2x8"

    def test_validation(self):
        with pytest.raises(ConfigError):
            Mesh2D(0, 4)


class TestHypercube:
    def test_hamming_distance(self):
        cube = Hypercube(16)
        assert cube.hops(0b0000, 0b1111) == 4
        assert cube.hops(0b0101, 0b0100) == 1
        assert cube.diameter == 4
        assert cube.dimension == 4

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            Hypercube(12)

    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(0, 15), b=st.integers(0, 15), c=st.integers(0, 15))
    def test_triangle_inequality(self, a, b, c):
        cube = Hypercube(16)
        assert cube.hops(a, c) <= cube.hops(a, b) + cube.hops(b, c)


class TestStandardSet:
    def test_ordering_by_average_hops(self):
        topologies = standard_topologies(16)
        averages = [t.average_hops for t in topologies]
        assert averages == sorted(averages)
        assert averages[0] == 1.0  # crossbar first

    def test_requires_square_count(self):
        with pytest.raises(ConfigError):
            standard_topologies(12)


class TestTopologyExperiment:
    def test_reduction_grows_with_distance(self):
        from repro.experiments import common, topology

        common.clear_caches()
        rows = topology.run(apps=("mp3d",), scale=0.25, num_procs=16)
        reductions = [r.time_reduction_pct for r in rows]
        assert reductions == sorted(reductions)
        assert all(r.adaptive_cycles < r.base_cycles for r in rows)
        assert "topology" in topology.render(rows)
