"""The ambient telemetry session, spans, and zero-overhead-off hooks."""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import Access, Op
from repro.directory.policy import BASIC
from repro.system.machine import DirectoryMachine
from repro.telemetry import runtime
from repro.telemetry.runtime import (
    EVENTS_FILENAME,
    METRICS_FILENAME,
    SPAN_SECONDS,
    TelemetrySession,
)
from repro.telemetry.sinks import MemorySink, read_jsonl
from repro.trace.core import Trace


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test starts and ends with no ambient session installed."""
    runtime.configure(None)
    yield
    runtime.configure(None)


def _tiny_machine() -> tuple[DirectoryMachine, Trace]:
    config = MachineConfig(
        num_procs=2, cache=CacheConfig(size_bytes=None, block_size=16)
    )
    trace = Trace(
        [Access(0, Op.READ, 0), Access(1, Op.WRITE, 0)], name="tiny"
    )
    return DirectoryMachine(config, BASIC), trace


class TestInactiveIsFree:
    def test_span_is_a_no_op(self):
        with runtime.span("anything", app="x"):
            pass  # must not raise, must not record

    def test_attach_is_a_no_op(self):
        machine, _ = _tiny_machine()
        assert runtime.attach(machine) is None
        assert machine.step_hook is None

    def test_active_is_none(self):
        assert runtime.active() is None


class TestSession:
    def test_directory_session_writes_both_files(self, tmp_path):
        with runtime.session(tmp_path) as sess:
            machine, trace = _tiny_machine()
            runtime.attach(machine)
            with runtime.span("replay.test", app="tiny"):
                machine.run(trace)
            assert runtime.active() is sess
        assert runtime.active() is None
        records = list(read_jsonl(tmp_path / EVENTS_FILENAME))
        types = {r["type"] for r in records}
        assert "coherence" in types and "span" in types
        metrics = (tmp_path / METRICS_FILENAME).read_text()
        assert SPAN_SECONDS in metrics
        assert "repro_steps_total" in metrics

    def test_span_records_histogram_and_event(self):
        sink = MemorySink()
        sess = TelemetrySession(sink=sink)
        with sess.span("stage.one", detail="x"):
            pass
        hist = sess.registry.histogram(SPAN_SECONDS)
        assert hist.count(span="stage.one") == 1
        (record,) = sink.records
        assert record["type"] == "span"
        assert record["name"] == "stage.one"
        assert record["detail"] == "x"

    def test_span_records_even_when_body_raises(self):
        sink = MemorySink()
        sess = TelemetrySession(sink=sink)
        with pytest.raises(RuntimeError):
            with sess.span("stage.boom"):
                raise RuntimeError("boom")
        assert sink.records[0]["name"] == "stage.boom"

    def test_instrument_machines_false_skips_recorders(self):
        sess = TelemetrySession(sink=MemorySink(),
                                instrument_machines=False)
        runtime.configure(sess)
        machine, trace = _tiny_machine()
        assert runtime.attach(machine) is None
        assert machine.step_hook is None  # packed fast path stays open
        machine.run(trace)
        assert sess.sink.records == []

    def test_configure_returns_previous(self):
        first = TelemetrySession(sink=MemorySink())
        second = TelemetrySession(sink=MemorySink())
        assert runtime.configure(first) is None
        assert runtime.configure(second) is first
        assert runtime.active() is second

    def test_shutdown_closes_and_clears(self, tmp_path):
        runtime.configure(TelemetrySession(tmp_path))
        runtime.shutdown()
        assert runtime.active() is None
        assert (tmp_path / METRICS_FILENAME).exists()
        runtime.shutdown()  # idempotent with no active session
