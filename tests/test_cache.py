"""Unit tests for the cache models."""

import random

import pytest

from repro.cache.core import (
    InfiniteCache,
    SetAssociativeCache,
    make_cache,
)
from repro.common.config import CacheConfig
from repro.common.errors import ConfigError


def small_cache(policy="lru"):
    # 4 lines, 2-way: two sets; even blocks map to set 0, odd to set 1.
    return SetAssociativeCache(
        CacheConfig(size_bytes=64, block_size=16, associativity=2, replacement=policy)
    )


class TestSetAssociativeCache:
    def test_insert_and_lookup(self):
        c = small_cache()
        assert c.insert(0, "S") is None
        line = c.lookup(0)
        assert line is not None and line.block == 0 and line.state == "S"
        assert c.lookup(2) is None
        assert 0 in c and 2 not in c

    def test_insert_existing_updates_state(self):
        c = small_cache()
        c.insert(0, "S")
        assert c.insert(0, "E", dirty=True) is None
        line = c.lookup(0)
        assert line.state == "E" and line.dirty

    def test_lru_eviction_order(self):
        c = small_cache()
        c.insert(0, "S")
        c.insert(2, "S")
        c.touch(0)  # 0 becomes most recent; victim should be 2
        victim = c.insert(4, "S")
        assert victim.block == 2
        assert c.lookup(0) is not None and c.lookup(4) is not None

    def test_fifo_ignores_touch(self):
        c = small_cache(policy="fifo")
        c.insert(0, "S")
        c.insert(2, "S")
        c.touch(0)
        victim = c.insert(4, "S")
        assert victim.block == 0  # oldest inserted, touch had no effect

    def test_random_uses_rng(self):
        cfg = CacheConfig(size_bytes=64, block_size=16, associativity=2,
                          replacement="random")
        c = SetAssociativeCache(cfg, random.Random(7))
        c.insert(0, "S")
        c.insert(2, "S")
        victim = c.insert(4, "S")
        assert victim.block in (0, 2)

    def test_sets_are_independent(self):
        c = small_cache()
        # Fill set 0 (even blocks); odd block must not evict from it.
        c.insert(0, "S")
        c.insert(2, "S")
        assert c.insert(1, "S") is None
        assert len(c) == 3

    def test_remove(self):
        c = small_cache()
        c.insert(0, "S")
        removed = c.remove(0)
        assert removed.block == 0
        assert c.remove(0) is None
        assert len(c) == 0

    def test_eviction_returns_dirty_line(self):
        c = small_cache()
        c.insert(0, "D", dirty=True)
        c.insert(2, "S")
        c.touch(2)
        # block 0 is LRU now? insertion order: 0 then 2; touch(2) keeps 0 oldest
        victim = c.insert(4, "S")
        assert victim.block == 0 and victim.dirty

    def test_resident_blocks(self):
        c = small_cache()
        for b in (0, 1, 2):
            c.insert(b, "S")
        assert sorted(c.resident_blocks()) == [0, 1, 2]

    def test_rejects_infinite_config(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(CacheConfig(size_bytes=None))

    def test_capacity_respected(self):
        c = small_cache()
        for b in range(0, 20, 2):  # all map to set 0
            c.insert(b, "S")
        assert len(c) == 2


class TestInfiniteCache:
    def test_never_evicts(self):
        c = InfiniteCache()
        for b in range(10_000):
            assert c.insert(b, "S") is None
        assert len(c) == 10_000
        assert c.lookup(1234).block == 1234

    def test_remove(self):
        c = InfiniteCache()
        c.insert(5, "S")
        assert c.remove(5).block == 5
        assert c.remove(5) is None

    def test_touch_noop(self):
        c = InfiniteCache()
        c.touch(99)  # must not raise


class TestMakeCache:
    def test_dispatch(self):
        assert isinstance(make_cache(CacheConfig(size_bytes=None)), InfiniteCache)
        assert isinstance(make_cache(CacheConfig()), SetAssociativeCache)
