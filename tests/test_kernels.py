"""The table-driven replay kernels of :mod:`repro.kernels`.

Three contracts are pinned here:

* **Equivalence** — on kernel-eligible replays, every statistic and
  every piece of final microarchitectural state (cache lines with dirty
  bits and competitive counters, directory entries with copy sets,
  invalidators and evidence streaks, classification transitions) is
  identical to the legacy engines', across the full policy/protocol
  matrix and both cache geometries.
* **Gating** — anything outside the kernel envelope (subclassed
  components, observation hooks, random replacement, stale machines,
  processor counts past the wide cap, the kill switches) silently falls
  back to the legacy paths with identical results and no engagement.
  Tiny evicting caches, first-touch placement, and processor counts up
  to 1024 are *inside* the envelope since the eviction-aware walks.
* **Compilation** — the probe-based compiler closes the evidence-streak
  axis by reachability for thresholded policies and produces stable,
  behaviour-keyed digests.
"""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.conformance import oracle
from repro.conformance.fuzzer import generate_case
from repro.directory.policy import (
    AGGRESSIVE,
    BASIC,
    CONSERVATIVE,
    CONVENTIONAL,
    AdaptivePolicy,
)
from repro.directory.representation import LimitedPointerDirectory
from repro.kernels import registry
from repro.kernels.tables import (
    compile_dir_rows,
    compile_snoop_rows,
    dir_table_digest,
    snoop_table_digest,
)
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import (
    AdaptiveSnoopingProtocol,
    AlwaysMigrateProtocol,
    MesiProtocol,
)
from repro.snooping.update_protocols import (
    CompetitiveUpdateProtocol,
    WriteUpdateProtocol,
)
from repro.system.machine import DirectoryMachine
from repro.system.placement import BestStaticPlacement, FirstTouchPlacement
from repro.trace import synth

NUM_PROCS = 6

POLICIES = (
    CONVENTIONAL, CONSERVATIVE, BASIC, AGGRESSIVE,
    AdaptivePolicy("deep", migratory_threshold=5),
)

PROTOCOL_FACTORIES = (
    MesiProtocol,
    AdaptiveSnoopingProtocol,
    lambda: AdaptiveSnoopingProtocol(initial_migratory=True),
    AlwaysMigrateProtocol,
    WriteUpdateProtocol,
    lambda: CompetitiveUpdateProtocol(2),
)

#: (label, cache_size) geometries: infinite, roomy finite (eviction
#: free), and a tiny finite cache whose conflict sets replay on the
#: eviction-aware group walks.  All three engage the kernel.
GEOMETRIES = (
    ("infinite", None, True),
    ("eviction-free", 16 * 1024, True),
    ("tiny", 64, True),
)


def _trace():
    return synth.interleave(
        [synth.migratory(num_procs=NUM_PROCS, num_objects=4, visits=8,
                         reads_per_visit=2, writes_per_visit=2, seed=11),
         synth.read_shared(num_procs=NUM_PROCS, num_objects=3, rounds=4,
                           base=1 << 16, seed=12)],
        chunk=4, seed=13)


def _config(cache_size=None):
    return MachineConfig(
        num_procs=NUM_PROCS,
        cache=CacheConfig(size_bytes=cache_size, block_size=16),
    )


def _lines(machine):
    out = []
    for proc, cache in enumerate(machine.caches):
        for block in sorted(cache.resident_blocks()):
            line = cache.lookup(block)
            out.append((proc, block, line.state, line.dirty, line.counter))
    return out


def _dir_state(machine):
    return {
        "short": machine.stats.short,
        "data": machine.stats.data,
        "by_cause_short": machine.stats.by_cause_short,
        "by_cause_data": machine.stats.by_cause_data,
        "cache_stats": machine.cache_stats,
        "invalidation_sizes": machine.invalidation_sizes,
        "transitions": machine.protocol.transitions,
        "entries": {
            block: (ent.state, tuple(sorted(ent.copyset)),
                    ent.last_invalidator, ent.streak)
            for block, ent in machine.protocol.entries.items()
        },
        "lines": _lines(machine),
    }


def _bus_state(machine):
    return {
        "bus_stats": machine.bus_stats,
        "by_kind": machine.bus_stats.by_kind,
        "cache_stats": machine.cache_stats,
        "lines": _lines(machine),
    }


def _run_directory(policy, cache_size, *, disabled, **kwargs):
    machine = DirectoryMachine(_config(cache_size), policy, **kwargs)
    if disabled:
        with registry.disabled():
            machine.run(_trace())
    else:
        machine.run(_trace())
    return machine


def _run_bus(factory, cache_size, *, disabled, **kwargs):
    machine = BusMachine(_config(cache_size), factory(), **kwargs)
    if disabled:
        with registry.disabled():
            machine.run(_trace())
    else:
        machine.run(_trace())
    return machine


class TestDirectoryEquivalence:
    @pytest.mark.parametrize("policy", POLICIES,
                             ids=[p.name for p in POLICIES])
    @pytest.mark.parametrize("label,cache_size,eligible", GEOMETRIES,
                             ids=[g[0] for g in GEOMETRIES])
    def test_matches_legacy_engine(self, policy, label, cache_size, eligible):
        registry.engagements.clear()
        kernel = _run_directory(policy, cache_size, disabled=False)
        assert registry.engagements["directory"] == (1 if eligible else 0)
        legacy = _run_directory(policy, cache_size, disabled=True)
        assert _dir_state(kernel) == _dir_state(legacy)


class TestBusEquivalence:
    @pytest.mark.parametrize("factory", PROTOCOL_FACTORIES,
                             ids=[f().name for f in PROTOCOL_FACTORIES])
    @pytest.mark.parametrize("label,cache_size,eligible", GEOMETRIES,
                             ids=[g[0] for g in GEOMETRIES])
    def test_matches_legacy_engine(self, factory, label, cache_size, eligible):
        registry.engagements.clear()
        kernel = _run_bus(factory, cache_size, disabled=False)
        assert registry.engagements["bus"] == (1 if eligible else 0)
        legacy = _run_bus(factory, cache_size, disabled=True)
        assert _bus_state(kernel) == _bus_state(legacy)


class TestGating:
    """Every gate falls back to the legacy paths, bit for bit."""

    def _assert_directory_fallback(self, **kwargs):
        registry.engagements.clear()
        machine = _run_directory(BASIC, None, disabled=False, **kwargs)
        assert registry.engagements["directory"] == 0
        legacy = _run_directory(BASIC, None, disabled=True, **kwargs)
        assert machine.cache_stats == legacy.cache_stats
        assert machine.stats == legacy.stats
        return machine

    def test_subclassed_machine(self):
        class Watching(DirectoryMachine):
            pass

        registry.engagements.clear()
        machine = Watching(_config(), BASIC)
        machine.run(_trace())
        assert registry.engagements["directory"] == 0

    def test_subclassed_protocol(self):
        class Watching(MesiProtocol):
            pass

        registry.engagements.clear()
        machine = BusMachine(_config(), Watching())
        machine.run(_trace())
        assert registry.engagements["bus"] == 0

    def test_first_touch_placement_engages(self):
        # First-touch homes are resolved from each page's first symbol
        # before the walk, so the placement no longer forces a fallback
        # — and the assigned homes must match the legacy engine's.
        registry.engagements.clear()
        kernel = _run_directory(BASIC, None, disabled=False,
                                placement=FirstTouchPlacement())
        assert registry.engagements["directory"] == 1
        legacy = _run_directory(BASIC, None, disabled=True,
                                placement=FirstTouchPlacement())
        assert _dir_state(kernel) == _dir_state(legacy)
        assert kernel.placement._homes == legacy.placement._homes

    def test_limited_pointer_representation(self):
        self._assert_directory_fallback(
            representation=LimitedPointerDirectory(pointers=2))

    def test_block_message_tracking(self):
        machine = self._assert_directory_fallback(track_blocks=True)
        assert machine.block_messages  # the observation actually happened

    def test_second_run_is_not_fresh(self):
        registry.engagements.clear()
        machine = DirectoryMachine(_config(), BASIC)
        machine.run(_trace())
        machine.run(_trace())
        assert registry.engagements["directory"] == 1
        legacy = DirectoryMachine(_config(), BASIC)
        with registry.disabled():
            legacy.run(_trace())
            legacy.run(_trace())
        assert _dir_state(machine) == _dir_state(legacy)

    def test_processor_count_beyond_symbol_byte_engages(self):
        # 130 processors overflow the one-byte symbol encoding; the
        # kernel switches to the 16-bit wide form instead of falling
        # back, with identical results.
        config = MachineConfig(
            num_procs=130, cache=CacheConfig(size_bytes=None, block_size=16))
        registry.engagements.clear()
        machine = DirectoryMachine(config, BASIC)
        machine.run(_trace())
        assert registry.engagements["directory"] == 1
        legacy = DirectoryMachine(config, BASIC)
        with registry.disabled():
            legacy.run(_trace())
        assert _dir_state(machine) == _dir_state(legacy)

    def test_processor_count_beyond_wide_cap(self):
        config = MachineConfig(
            num_procs=1030, cache=CacheConfig(size_bytes=None, block_size=16))
        registry.engagements.clear()
        machine = DirectoryMachine(config, BASIC)
        machine.run(_trace())
        assert registry.engagements["directory"] == 0

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_KERNEL", "1")
        registry.engagements.clear()
        machine = DirectoryMachine(_config(), BASIC)
        machine.run(_trace())
        assert registry.engagements["directory"] == 0

    def test_disabled_context_nests(self):
        registry.engagements.clear()
        with registry.disabled():
            with registry.disabled():
                pass
            # Still disabled until the outermost exit.
            machine = BusMachine(_config(), MesiProtocol())
            machine.run(_trace())
        assert registry.engagements["bus"] == 0
        machine = BusMachine(_config(), MesiProtocol())
        machine.run(_trace())
        assert registry.engagements["bus"] == 1

    def test_best_static_placement_engages(self):
        trace = _trace()
        placement = BestStaticPlacement.from_trace(trace, _config())
        registry.engagements.clear()
        kernel = DirectoryMachine(_config(), BASIC, placement=placement)
        kernel.run(trace)
        assert registry.engagements["directory"] == 1
        legacy = DirectoryMachine(
            _config(), BASIC,
            placement=BestStaticPlacement.from_trace(trace, _config()))
        with registry.disabled():
            legacy.run(trace)
        assert _dir_state(kernel) == _dir_state(legacy)


class TestEvictionAware:
    """The eviction-aware group walks replay conflict sets exactly."""

    def test_tiny_geometry_really_evicts(self):
        # Guard the geometry choice: the "tiny" equivalence runs above
        # are only meaningful if replacement actually happens.
        legacy = _run_directory(BASIC, 64, disabled=True)
        stats = legacy.cache_stats
        assert stats.evictions_dirty + stats.evictions_clean > 0

    def test_post_replay_accesses_observe_identical_order(self):
        # Replacement order is observable by accesses *after* the
        # replay: continue both machines through the generic per-access
        # path and require identical state afterwards, which pins the
        # kernel's per-set recency re-insertion order.
        tail = synth.migratory(num_procs=NUM_PROCS, num_objects=6, visits=6,
                               reads_per_visit=1, writes_per_visit=1, seed=99)
        registry.engagements.clear()
        kernel = _run_directory(BASIC, 64, disabled=False)
        assert registry.engagements["directory"] == 1
        legacy = _run_directory(BASIC, 64, disabled=True)
        kernel.run(tail)
        legacy.run(tail)
        assert _dir_state(kernel) == _dir_state(legacy)

    def test_fifo_replacement_engages(self):
        config = MachineConfig(
            num_procs=NUM_PROCS,
            cache=CacheConfig(size_bytes=64, block_size=16,
                              replacement="fifo"))
        registry.engagements.clear()
        kernel = DirectoryMachine(config, BASIC)
        kernel.run(_trace())
        assert registry.engagements["directory"] == 1
        legacy = DirectoryMachine(config, BASIC)
        with registry.disabled():
            legacy.run(_trace())
        assert _dir_state(kernel) == _dir_state(legacy)


class TestCompiler:
    def test_streak_axis_closes_by_reachability(self):
        # A deep threshold compiles because only *reachable* (state,
        # streak) pairs are probed; the streak axis tops out at the
        # promotion threshold instead of running away.
        rows = compile_dir_rows(AdaptivePolicy("deep", migratory_threshold=5))
        streaks = {streak for (_s, streak, _f) in rows.read_miss}
        assert max(streaks) <= 5
        assert len(streaks) > 1  # the hysteresis axis is really there

    def test_unthresholded_policy_has_flat_streak_axis(self):
        rows = compile_dir_rows(CONVENTIONAL)
        assert {streak for (_s, streak, _f) in rows.read_miss} == {0}

    def test_dir_digests_key_on_behaviour(self):
        assert dir_table_digest(BASIC) == dir_table_digest(
            AdaptivePolicy("renamed", migratory_threshold=1))
        assert dir_table_digest(BASIC) != dir_table_digest(AGGRESSIVE)

    def test_snoop_digest_rejects_subclasses(self):
        class OffEnvelope(MesiProtocol):
            pass

        assert snoop_table_digest(MesiProtocol()) != "uncompiled"
        assert snoop_table_digest(OffEnvelope()) == "uncompiled"

    def test_snoop_rows_memoized_per_variant(self):
        assert compile_snoop_rows(MesiProtocol()) is compile_snoop_rows(
            MesiProtocol())
        assert compile_snoop_rows(CompetitiveUpdateProtocol(1)) \
            is not compile_snoop_rows(CompetitiveUpdateProtocol(2))


class TestOracleKernelStage:
    """The conformance oracle's kernel-diff stage actually fires."""

    def test_clean_case_passes(self):
        case = generate_case(3, "kernel")
        assert oracle.run_case(case) is None

    def test_evict_profile_exercises_group_walks(self):
        registry.clear()
        case = generate_case(27, "evict")
        assert oracle.run_case(case) is None
        # The kernel-diff replays really engaged on the evicting
        # geometry rather than silently comparing packed to packed.
        assert registry.engagements["directory"] > 0
        assert registry.engagements["bus"] > 0

    def test_corrupted_bus_kernel_is_caught(self, monkeypatch):
        from repro.kernels import snooping

        original = snooping._apply

        def skewed(machine, table, totals, finals):
            original(machine, table, totals, finals)
            machine.bus_stats.read_miss += 1

        monkeypatch.setattr(snooping, "_apply", skewed)
        failure = oracle.run_case(generate_case(3, "kernel"))
        assert failure is not None
        assert failure.stage == "kernel-diff"
        assert failure.engine.startswith("bus-kernel[")
        assert "read_miss" in failure.detail

    def test_corrupted_directory_kernel_is_caught(self, monkeypatch):
        from repro.kernels import directory

        original = directory._apply

        def skewed(machine, totals, inv_sizes, finals):
            original(machine, totals, inv_sizes, finals)
            machine.stats.short += 1

        monkeypatch.setattr(directory, "_apply", skewed)
        failure = oracle.run_case(generate_case(3, "kernel"))
        assert failure is not None
        assert failure.stage == "kernel-diff"
        assert failure.engine.startswith("directory-kernel[")
