"""Tests for limited-pointer directory representations."""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import ConfigError
from repro.directory.policy import AGGRESSIVE, BASIC, CONVENTIONAL
from repro.directory.representation import (
    FullMapDirectory,
    LimitedPointerDirectory,
)
from repro.system.machine import DirectoryMachine
from repro.trace import synth


def machine(representation=None, policy=CONVENTIONAL, procs=6):
    cfg = MachineConfig(
        num_procs=procs, cache=CacheConfig(size_bytes=None, block_size=16)
    )
    return DirectoryMachine(cfg, policy, check=True,
                            representation=representation)


class TestConstruction:
    def test_names(self):
        assert FullMapDirectory().name == "full-map"
        assert LimitedPointerDirectory(4).name == "dir4B"
        assert LimitedPointerDirectory(2, broadcast=False).name == "dir2NB"

    def test_pointer_validation(self):
        with pytest.raises(ConfigError):
            LimitedPointerDirectory(0)

    def test_default_is_full_map(self):
        m = machine()
        assert isinstance(m.representation, FullMapDirectory)


class TestDirB:
    def test_no_overflow_matches_full_map(self):
        """While sharers fit in the pointers, Dir_iB is exact."""
        trace = synth.migratory(num_procs=6, num_objects=4, visits=30, seed=1)
        full = machine(FullMapDirectory())
        full.run(trace)
        limited = machine(LimitedPointerDirectory(2))
        limited.run(trace)
        # migratory blocks hold 1-2 copies: identical costs
        assert limited.stats.snapshot() == full.stats.snapshot()

    def test_overflow_broadcast_costs_more(self):
        """Invalidating a widely-read block costs a full broadcast."""
        full = machine(FullMapDirectory())
        limited = machine(LimitedPointerDirectory(2))
        for m in (full, limited):
            for proc in range(3):
                m.access(proc, False, 0)  # three sharers: overflow at 3rd
            m.access(5, True, 0)  # write miss must reach "everyone"
        # full map invalidates the 2 distant sharers; the overflowed
        # directory broadcasts to all 4 non-writer/non-home nodes.
        assert limited.stats.total == full.stats.total + 2 * 2

    def test_overflow_flag_lifecycle(self):
        m = machine(LimitedPointerDirectory(2))
        for proc in range(4):
            m.access(proc, False, 0)
        assert m.protocol.entry(0).overflowed
        m.access(5, True, 0)  # exclusive again
        assert not m.protocol.entry(0).overflowed

    def test_coherence_preserved(self):
        trace = synth.interleave(
            [
                synth.migratory(num_procs=6, num_objects=3, visits=25, seed=2),
                synth.read_shared(num_procs=6, num_objects=3, rounds=10,
                                  base=1 << 16, seed=3),
            ],
            chunk=4,
            seed=4,
        )
        machine(LimitedPointerDirectory(2), policy=AGGRESSIVE).run(trace)


class TestDirNB:
    def test_pointer_eviction_limits_sharers(self):
        m = machine(LimitedPointerDirectory(2, broadcast=False))
        for proc in range(5):
            m.access(proc, False, 0)
        holders = [
            p for p in range(6) if m.caches[p].lookup(0) is not None
        ]
        assert len(holders) == 2
        assert m.stats.by_cause_short["pointer_eviction"] > 0

    def test_never_overflows(self):
        m = machine(LimitedPointerDirectory(2, broadcast=False))
        for proc in range(5):
            m.access(proc, False, 0)
        assert not m.protocol.entry(0).overflowed
        assert len(m.protocol.entry(0).copyset) <= 2

    def test_read_shared_thrashes(self):
        """Dir_iNB makes wide read sharing expensive (copies ping-pong
        between readers), while Dir_iB only pays at invalidations."""
        trace = synth.read_shared(num_procs=6, num_objects=4, rounds=20,
                                  seed=5)
        nb = machine(LimitedPointerDirectory(1, broadcast=False))
        nb.run(trace)
        b = machine(LimitedPointerDirectory(1))
        b.run(trace)
        assert nb.stats.total > b.stats.total

    def test_coherence_preserved(self):
        trace = synth.interleave(
            [
                synth.migratory(num_procs=6, num_objects=3, visits=25, seed=6),
                synth.read_shared(num_procs=6, num_objects=3, rounds=10,
                                  base=1 << 16, seed=7),
            ],
            chunk=4,
            seed=8,
        )
        machine(LimitedPointerDirectory(1, broadcast=False),
                policy=BASIC).run(trace)


class TestAdaptiveInteraction:
    def test_migratory_blocks_never_overflow(self):
        """Migratory data lives on one pointer: limited directories keep
        the full adaptive advantage."""
        trace = synth.migratory(num_procs=6, num_objects=4, visits=40,
                                seed=9)
        for repr_factory in (
            FullMapDirectory,
            lambda: LimitedPointerDirectory(2),
            lambda: LimitedPointerDirectory(2, broadcast=False),
        ):
            conv = machine(repr_factory(), CONVENTIONAL)
            conv.run(trace)
            aggr = machine(repr_factory(), AGGRESSIVE)
            aggr.run(trace)
            reduction = 1 - aggr.stats.total / conv.stats.total
            assert reduction > 0.40

    def test_adaptive_advantage_grows_under_limited_directories(self):
        """Read-shared data gets pricier under Dir_iB, so handling the
        migratory share well matters relatively more."""
        trace = synth.interleave(
            [
                synth.migratory(num_procs=6, num_objects=4, visits=30,
                                seed=10),
                synth.read_shared(num_procs=6, num_objects=4, rounds=12,
                                  base=1 << 16, seed=11),
            ],
            chunk=4,
            seed=12,
        )
        reductions = {}
        for name, factory in (
            ("full", FullMapDirectory),
            ("dir1B", lambda: LimitedPointerDirectory(1)),
        ):
            conv = machine(factory(), CONVENTIONAL)
            conv.run(trace)
            aggr = machine(factory(), AGGRESSIVE)
            aggr.run(trace)
            reductions[name] = 1 - aggr.stats.total / conv.stats.total
        assert reductions["dir1B"] >= reductions["full"] * 0.9
