"""Telemetry event schema and the sinks/exporters that carry it."""

import json

import pytest

from repro.common.errors import TelemetryError
from repro.telemetry.events import (
    ClassificationEvent,
    CoherenceEvent,
    SpanEvent,
    deterministic_records,
    validate_jsonl,
    validate_record,
    validate_records,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import (
    JsonlSink,
    MemorySink,
    encode_record,
    read_jsonl,
    write_prometheus,
)


def _coherence() -> dict:
    return CoherenceEvent(12, "directory[basic]", "read_miss", 3, 64).to_record()


def _classification() -> dict:
    return ClassificationEvent(
        12, "directory[basic]", 64, 3, "promote", "ONE_COPY",
        "ONE_COPY_MIG", 2,
    ).to_record()


class TestSchema:
    def test_typed_records_validate(self):
        validate_record(_coherence())
        validate_record(_classification())
        validate_record(SpanEvent("replay", 0.25, {"app": "mp3d"}).to_record())
        validate_record({"type": "progress", "campaign": "fuzz", "seed": 1})

    def test_unknown_type_rejected(self):
        with pytest.raises(TelemetryError, match="unknown event type"):
            validate_record({"type": "mystery"})

    def test_missing_field_rejected(self):
        record = _coherence()
        del record["proc"]
        with pytest.raises(TelemetryError, match="proc"):
            validate_record(record)

    def test_mistyped_field_rejected(self):
        record = _coherence()
        record["block"] = "0x40"
        with pytest.raises(TelemetryError, match="block"):
            validate_record(record)

    def test_bool_is_not_an_int(self):
        record = _coherence()
        record["step"] = True
        with pytest.raises(TelemetryError, match="step"):
            validate_record(record)

    def test_unknown_coherence_kind_rejected(self):
        record = _coherence()
        record["kind"] = "teleport"
        with pytest.raises(TelemetryError, match="teleport"):
            validate_record(record)

    def test_unknown_transition_rejected(self):
        record = _classification()
        record["transition"] = "sideways"
        with pytest.raises(TelemetryError, match="sideways"):
            validate_record(record)

    def test_non_object_rejected(self):
        with pytest.raises(TelemetryError):
            validate_record(["not", "a", "record"])

    def test_validate_records_counts(self):
        assert validate_records([_coherence(), _classification()]) == 2


class TestDeterministicFilter:
    def test_spans_are_dropped(self):
        stream = [
            _coherence(),
            SpanEvent("replay", 0.1).to_record(),
            _classification(),
        ]
        kept = list(deterministic_records(stream))
        assert [r["type"] for r in kept] == ["coherence", "classification"]


class TestSinks:
    def test_memory_sink_copies_records(self):
        sink = MemorySink()
        record = _coherence()
        sink.write(record)
        record["step"] = 999
        assert sink.records[0]["step"] == 12
        assert len(sink) == 1

    def test_encode_record_is_canonical(self):
        assert encode_record({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "deep" / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.write(_coherence())
            sink.write(_classification())
            assert sink.count == 2
        loaded = list(read_jsonl(path))
        assert loaded == [_coherence(), _classification()]
        assert validate_jsonl(path) == 2

    def test_jsonl_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.write(_coherence())
        with JsonlSink(path) as sink:
            sink.write(_classification())
        assert len(list(read_jsonl(path))) == 2

    def test_read_jsonl_rejects_garbage_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"coherence"}\nnot json\n')
        with pytest.raises(TelemetryError, match="bad.jsonl:2"):
            list(read_jsonl(path))

    def test_read_jsonl_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1,2,3]\n")
        with pytest.raises(TelemetryError, match="JSON object"):
            list(read_jsonl(path))

    def test_identical_streams_produce_identical_files(self, tmp_path):
        records = [_coherence(), _classification()]
        for name in ("a", "b"):
            with JsonlSink(tmp_path / name) as sink:
                for record in records:
                    sink.write(record)
        assert (tmp_path / "a").read_bytes() == (tmp_path / "b").read_bytes()

    def test_write_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c", "help").inc(3)
        path = write_prometheus(reg, tmp_path / "out" / "metrics.prom")
        assert path.read_text() == "# HELP c help\n# TYPE c counter\nc 3\n"


def test_span_meta_cannot_shadow_required_fields():
    record = SpanEvent("replay", 0.5, {"name": "evil", "app": "mp3d"}).to_record()
    assert record["name"] == "replay"
    assert record["app"] == "mp3d"
    # meta values must stay JSON-able
    json.dumps(record)
