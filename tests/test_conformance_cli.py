"""The ``repro-fuzz`` CLI, exercised in-process via ``main(argv)``."""

import pytest

from repro.conformance import artifacts
from repro.conformance.cli import main
from repro.telemetry import deterministic_records, validate_jsonl
from repro.telemetry.sinks import encode_record, read_jsonl


def run_cli(capsys, *argv):
    status = main(list(argv))
    captured = capsys.readouterr()
    return status, captured.out


class TestCleanRuns:
    def test_clean_run_exits_zero(self, capsys, tmp_path):
        status, out = run_cli(
            capsys, "--seeds", "2", "--profile", "uniform",
            "--artifacts", str(tmp_path / "art"),
        )
        assert status == 0
        assert "2 cases, 0 failure(s)" in out
        assert not (tmp_path / "art").exists()  # nothing to save

    def test_stdout_is_deterministic_across_job_counts(
        self, capsys, tmp_path
    ):
        args = ("--seeds", "2", "--profile", "migratory",
                "--artifacts", str(tmp_path / "art"), "--verbose")
        _, serial = run_cli(capsys, *args, "--jobs", "1")
        _, parallel = run_cli(capsys, *args, "--jobs", "2")
        assert serial == parallel

    def test_all_profiles_by_default(self, capsys, tmp_path):
        status, out = run_cli(
            capsys, "--seeds", "1", "--artifacts", str(tmp_path / "art"),
        )
        assert status == 0
        from repro.conformance.fuzzer import PROFILES
        assert f"1 seeds x {len(PROFILES)} profile(s)" in out


class TestInjectedFailures:
    def test_injected_bug_yields_shrunk_artifact(self, capsys, tmp_path):
        art = tmp_path / "art"
        status, out = run_cli(
            capsys, "--seeds", "1", "--profile", "migratory",
            "--inject", "drop-invalidation", "--artifacts", str(art),
        )
        assert status == 1
        assert "FAIL invariants" in out
        saved = list(artifacts.iter_reproducers(art))
        assert len(saved) == 1
        path, case, sidecar = saved[0]
        assert path.name == "migratory-seed00000"
        assert len(case.trace) <= 20  # the acceptance bound
        assert sidecar["failure"]["stage"] == "invariants"
        assert "shrunk from" in sidecar["notes"]

    def test_no_shrink_saves_full_trace(self, capsys, tmp_path):
        art = tmp_path / "art"
        status, out = run_cli(
            capsys, "--seeds", "1", "--profile", "migratory",
            "--inject", "drop-invalidation", "--artifacts", str(art),
            "--no-shrink",
        )
        assert status == 1
        assert "unshrunk" in out
        (_, case, _), = artifacts.iter_reproducers(art)
        assert len(case.trace) > 20  # untouched original


class TestTelemetry:
    def test_campaign_telemetry_recorded(self, capsys, tmp_path):
        tel = tmp_path / "tel"
        status, _ = run_cli(
            capsys, "--seeds", "2", "--profile", "uniform",
            "--artifacts", str(tmp_path / "art"),
            "--telemetry-dir", str(tel),
        )
        assert status == 0
        assert validate_jsonl(tel / "events.jsonl") > 0
        records = list(read_jsonl(tel / "events.jsonl"))
        progress = [r for r in records if r["type"] == "progress"]
        assert len(progress) == 2
        assert all(r["status"] == "ok" for r in progress)
        metrics = (tel / "metrics.prom").read_text()
        assert ('repro_fuzz_cases_total{profile="uniform",status="ok"} 2'
                in metrics)
        assert "repro_fuzz_trace_ops" in metrics

    def test_deterministic_part_identical_across_job_counts(
        self, capsys, tmp_path
    ):
        logs = []
        for jobs, name in (("1", "a"), ("2", "b")):
            tel = tmp_path / name
            run_cli(
                capsys, "--seeds", "2", "--profile", "migratory",
                "--artifacts", str(tmp_path / "art"),
                "--telemetry-dir", str(tel), "--jobs", jobs,
            )
            logs.append("\n".join(
                encode_record(r) for r in
                deterministic_records(read_jsonl(tel / "events.jsonl"))
            ))
        assert logs[0] == logs[1]

    def test_session_is_torn_down_after_run(self, capsys, tmp_path):
        from repro.telemetry import runtime

        run_cli(
            capsys, "--seeds", "1", "--profile", "uniform",
            "--artifacts", str(tmp_path / "art"),
            "--telemetry-dir", str(tmp_path / "tel"),
        )
        assert runtime.active() is None


class TestArgumentValidation:
    def test_zero_seeds_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--seeds", "0"])
        assert excinfo.value.code == 2

    def test_unknown_profile_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--profile", "nope"])

    def test_unknown_injection_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--inject", "nope"])
