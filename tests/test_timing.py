"""Unit tests for the execution-time model."""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import read, write
from repro.directory.policy import BASIC, CONVENTIONAL
from repro.system.machine import DirectoryMachine
from repro.timing.sim import (
    TimingParams,
    TimingResult,
    TimingSimulator,
    percent_time_reduction,
)
from repro.trace import synth
from repro.trace.core import Trace


def machine(policy=CONVENTIONAL, procs=4):
    cfg = MachineConfig(
        num_procs=procs, cache=CacheConfig(size_bytes=None, block_size=16)
    )
    return DirectoryMachine(cfg, policy)


PARAMS = TimingParams(hit_cycles=1, memory_cycles=10, message_cycles=5,
                      compute_cycles_per_ref=0)


class TestTimingSimulator:
    def test_hit_costs_hit_cycles(self):
        sim = TimingSimulator(machine(), PARAMS)
        # local read miss (free), then a hit
        result = sim.run(Trace([read(0, 0), read(0, 0)]))
        # miss: 10 + 5*0 = 10; hit: 1
        assert result.per_proc_cycles[0] == 11

    def test_miss_cost_scales_with_messages(self):
        sim = TimingSimulator(machine(), PARAMS)
        # P1 remote write miss: (1,1) -> 2 messages -> 10 + 5*2 = 20
        result = sim.run(Trace([write(1, 0)]))
        assert result.per_proc_cycles[1] == 20

    def test_compute_cycles_added_per_ref(self):
        params = TimingParams(hit_cycles=1, memory_cycles=10,
                              message_cycles=5, compute_cycles_per_ref=7)
        sim = TimingSimulator(machine(), params)
        result = sim.run(Trace([read(0, 0), read(0, 0)]))
        assert result.per_proc_cycles[0] == 11 + 2 * 7

    def test_execution_time_is_max_over_procs(self):
        sim = TimingSimulator(machine(), PARAMS)
        result = sim.run(Trace([read(0, 0), read(1, 4096), read(1, 4096)]))
        assert result.execution_time == max(result.per_proc_cycles)

    def test_read_miss_latency_tracked(self):
        sim = TimingSimulator(machine(), PARAMS)
        result = sim.run(Trace([read(1, 0)]))  # remote clean: (1,1) -> 20
        assert result.read_miss_count == 1
        assert result.mean_read_miss_latency == pytest.approx(20.0)

    def test_no_read_misses_mean_zero(self):
        assert TimingResult([0], 0).mean_read_miss_latency == 0.0

    def test_upgrade_charged_as_miss(self):
        sim = TimingSimulator(machine(), PARAMS)
        # P1 reads (miss), then writes (upgrade: remote clean DC=0 -> 2 short)
        result = sim.run(Trace([read(1, 0), write(1, 0)]))
        # read miss: 10+5*2=20 ; upgrade: 10+5*2=20
        assert result.per_proc_cycles[1] == 40


class TestAdaptiveTimingAdvantage:
    def test_adaptive_faster_on_migratory_workload(self):
        trace = synth.migratory(num_procs=4, num_objects=4, visits=60, seed=11)
        base = TimingSimulator(machine(CONVENTIONAL), PARAMS).run(trace)
        adapt = TimingSimulator(machine(BASIC), PARAMS).run(trace)
        reduction = percent_time_reduction(base, adapt)
        assert reduction > 5.0

    def test_compute_dilutes_reduction(self):
        trace = synth.migratory(num_procs=4, num_objects=4, visits=60, seed=11)
        diluted = TimingParams(hit_cycles=1, memory_cycles=10,
                               message_cycles=5, compute_cycles_per_ref=100)
        base_lean = TimingSimulator(machine(CONVENTIONAL), PARAMS).run(trace)
        adapt_lean = TimingSimulator(machine(BASIC), PARAMS).run(trace)
        base_fat = TimingSimulator(machine(CONVENTIONAL), diluted).run(trace)
        adapt_fat = TimingSimulator(machine(BASIC), diluted).run(trace)
        assert percent_time_reduction(base_fat, adapt_fat) < (
            percent_time_reduction(base_lean, adapt_lean)
        )

    def test_zero_base_time(self):
        empty = TimingResult([0], 0)
        assert percent_time_reduction(empty, empty) == 0.0
