"""Cross-validation properties between the two machine models.

The bus and directory machines were written independently, but both
implement write-invalidate coherence over the same cache substrate, so
their *cache event streams* must agree exactly for the conventional
protocols: MESI on the bus and replicate-on-read-miss at the directory
invalidate the same copies at the same points, so every hit/miss outcome
matches access for access.  This is a strong mutual check on both
implementations.

Also here: coherence and optimality properties for the newer features
(oracle hints, update protocols) under randomized traces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.oracle import read_exclusive_hints
from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import Access, Op
from repro.directory.policy import CONVENTIONAL
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import AdaptiveSnoopingProtocol, MesiProtocol
from repro.snooping.update_protocols import (
    CompetitiveUpdateProtocol,
    WriteUpdateProtocol,
)
from repro.system.machine import DirectoryMachine

NUM_PROCS = 4

word_accesses = st.lists(
    st.builds(
        Access,
        proc=st.integers(0, NUM_PROCS - 1),
        op=st.sampled_from([Op.READ, Op.WRITE]),
        addr=st.integers(0, 63).map(lambda w: w * 4),
    ),
    max_size=250,
)


def config(size=None):
    return MachineConfig(
        num_procs=NUM_PROCS,
        cache=CacheConfig(size_bytes=size, block_size=16),
    )


class TestMesiDirectoryEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(trace=word_accesses)
    def test_identical_hit_miss_streams_infinite(self, trace):
        bus = BusMachine(config(), MesiProtocol(), check=True)
        directory = DirectoryMachine(config(), CONVENTIONAL, check=True)
        bus.run(trace)
        directory.run(trace)
        b, d = bus.cache_stats, directory.cache_stats
        assert (b.read_hits, b.read_misses) == (d.read_hits, d.read_misses)
        assert (b.write_hits, b.write_misses) == (d.write_hits, d.write_misses)

    @settings(max_examples=60, deadline=None)
    @given(trace=word_accesses)
    def test_identical_hit_miss_streams_finite(self, trace):
        # 1-way 64-byte caches: maximal conflict pressure.
        cfg = MachineConfig(
            num_procs=NUM_PROCS,
            cache=CacheConfig(size_bytes=64, block_size=16, associativity=1),
        )
        bus = BusMachine(cfg, MesiProtocol(), check=True)
        directory = DirectoryMachine(cfg, CONVENTIONAL, check=True)
        bus.run(trace)
        directory.run(trace)
        b, d = bus.cache_stats, directory.cache_stats
        assert (b.read_hits, b.read_misses) == (d.read_hits, d.read_misses)
        assert (b.write_hits, b.write_misses) == (d.write_hits, d.write_misses)
        assert (
            b.evictions_clean + b.evictions_dirty
            == d.evictions_clean + d.evictions_dirty
        )


class TestOracleProperties:
    @settings(max_examples=60, deadline=None)
    @given(trace=word_accesses)
    def test_oracle_never_worse_than_conventional(self, trace):
        """Correct hints can only remove messages: each hinted read folds
        a later upgrade into the fetch."""
        hints = read_exclusive_hints(trace, block_size=16)
        plain = DirectoryMachine(config(), CONVENTIONAL, check=True)
        plain.run(trace)
        hinted = DirectoryMachine(config(), CONVENTIONAL, check=True)
        hinted.run_with_hints(trace, hints)
        assert hinted.stats.total <= plain.stats.total

    @settings(max_examples=40, deadline=None)
    @given(trace=word_accesses)
    def test_hints_coherent_under_small_caches(self, trace):
        hints = read_exclusive_hints(trace, block_size=16)
        cfg = MachineConfig(
            num_procs=NUM_PROCS,
            cache=CacheConfig(size_bytes=64, block_size=16, associativity=1),
        )
        machine = DirectoryMachine(cfg, CONVENTIONAL, check=True)
        machine.run_with_hints(trace, hints)  # checker enforces coherence


class TestUpdateProtocolProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        trace=word_accesses,
        threshold=st.integers(0, 3),
        size=st.sampled_from([None, 64]),
    )
    def test_competitive_update_coherent(self, trace, threshold, size):
        machine = BusMachine(
            config(size), CompetitiveUpdateProtocol(threshold), check=True
        )
        machine.run(trace)
        assert machine.cache_stats.accesses == len(trace)

    @settings(max_examples=50, deadline=None)
    @given(trace=word_accesses, size=st.sampled_from([None, 64]))
    def test_write_update_coherent(self, trace, size):
        machine = BusMachine(config(size), WriteUpdateProtocol(), check=True)
        machine.run(trace)
        assert machine.cache_stats.accesses == len(trace)

    @settings(max_examples=40, deadline=None)
    @given(trace=word_accesses)
    def test_update_protocols_never_read_miss_more_than_mesi(self, trace):
        """Updates preserve copies, so update protocols can only have
        *fewer* read misses than an invalidation protocol."""
        mesi = BusMachine(config(), MesiProtocol(), check=True)
        mesi.run(trace)
        update = BusMachine(config(), WriteUpdateProtocol(), check=True)
        update.run(trace)
        assert update.cache_stats.read_misses <= mesi.cache_stats.read_misses


class TestInitialMigratoryProperties:
    @settings(max_examples=50, deadline=None)
    @given(trace=word_accesses, size=st.sampled_from([None, 64]))
    def test_initial_migratory_coherent(self, trace, size):
        machine = BusMachine(
            config(size),
            AdaptiveSnoopingProtocol(initial_migratory=True),
            check=True,
        )
        machine.run(trace)
        assert machine.cache_stats.accesses == len(trace)


class TestPolicyDegenerationProperties:
    @settings(max_examples=40, deadline=None)
    @given(trace=word_accesses)
    def test_huge_threshold_equals_conventional(self, trace):
        """A threshold no trace can reach must behave exactly like the
        conventional protocol (the adaptation machinery is inert)."""
        from repro.directory.policy import AdaptivePolicy

        inert = AdaptivePolicy("inert", migratory_threshold=10**9)
        a = DirectoryMachine(config(), CONVENTIONAL, check=True)
        a.run(trace)
        b = DirectoryMachine(config(), inert, check=True)
        b.run(trace)
        assert a.stats.snapshot() == b.stats.snapshot()

    @settings(max_examples=40, deadline=None)
    @given(trace=word_accesses)
    def test_stenstrom_never_beats_basic_by_much(self, trace):
        """The Stenström demotion rule only removes classifications, so
        it can cost but rarely helps on arbitrary traffic; the two stay
        close (Section 5's consistency remark)."""
        from repro.directory.policy import BASIC, STENSTROM

        a = DirectoryMachine(config(), BASIC, check=True)
        a.run(trace)
        b = DirectoryMachine(config(), STENSTROM, check=True)
        b.run(trace)
        if a.stats.total:
            assert b.stats.total <= a.stats.total * 1.5 + 8
