"""Tests for the event-driven contention simulator."""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import read, write
from repro.directory.policy import BASIC, CONVENTIONAL
from repro.system.machine import DirectoryMachine
from repro.timing.eventsim import EventDrivenSimulator, EventTimingParams
from repro.trace import synth
from repro.trace.core import Trace

PARAMS = EventTimingParams(hit_cycles=1, network_cycles=10,
                           occupancy_cycles=5, compute_cycles_per_ref=0)


def machine(policy=CONVENTIONAL, procs=4):
    cfg = MachineConfig(
        num_procs=procs, cache=CacheConfig(size_bytes=None, block_size=16)
    )
    return DirectoryMachine(cfg, policy)


class TestBasics:
    def test_hit_costs_hit_cycles(self):
        sim = EventDrivenSimulator(machine(), PARAMS)
        result = sim.run(Trace([read(0, 0), read(0, 0)]))
        # local clean miss (0 messages): 10 + 5 + 10 = 25, then hit: 1
        assert result.per_proc_cycles[0] == 26
        assert result.total_references == 2

    def test_uncontended_miss_latency(self):
        sim = EventDrivenSimulator(machine(), PARAMS)
        result = sim.run(Trace([read(1, 0)]))  # remote clean: 2 messages
        # network 10 + service 5*2 + network 10 = 30
        assert result.mean_read_miss_latency == pytest.approx(30.0)
        assert result.queue_wait_cycles == 0

    def test_contention_emerges_at_shared_home(self):
        """Two processors missing on the same home must queue."""
        sim = EventDrivenSimulator(machine(), PARAMS)
        # both miss blocks homed at node 0, at time 0
        result = sim.run(Trace([read(1, 0), read(2, 16)]))
        assert result.queue_wait_cycles > 0

    def test_distinct_homes_do_not_queue(self):
        sim = EventDrivenSimulator(machine(), PARAMS)
        # page 0 -> home 0, page 1 -> home 1 (round robin)
        result = sim.run(Trace([read(1, 0), read(2, 4096)]))
        assert result.queue_wait_cycles == 0

    def test_per_proc_order_preserved(self):
        trace = synth.migratory(num_procs=4, num_objects=2, visits=10,
                                seed=2)
        m = machine()
        EventDrivenSimulator(m, PARAMS).run(trace)
        assert m.cache_stats.accesses == len(trace)

    def test_compute_cycles_accumulate(self):
        params = EventTimingParams(hit_cycles=1, network_cycles=10,
                                   occupancy_cycles=5,
                                   compute_cycles_per_ref=7)
        sim = EventDrivenSimulator(machine(), params)
        result = sim.run(Trace([read(0, 0), read(0, 0)]))
        assert result.per_proc_cycles[0] == 26 + 2 * 7

    def test_contention_share_bounds(self):
        sim = EventDrivenSimulator(machine(), PARAMS)
        result = sim.run(Trace([read(1, 0)]))
        assert 0.0 <= result.contention_share <= 1.0


class TestPaperMechanism:
    """The Section 4.2 contention observations, reproduced."""

    @pytest.fixture(scope="class")
    def results(self):
        trace = synth.migratory(num_procs=4, num_objects=6, visits=60,
                                reads_per_visit=2, writes_per_visit=2,
                                seed=7)
        out = {}
        for policy in (CONVENTIONAL, BASIC):
            m = machine(policy)
            out[policy.name] = EventDrivenSimulator(m, PARAMS).run(trace)
        return out

    def test_adaptive_faster_under_contention(self, results):
        assert (
            results["basic"].execution_time
            < results["conventional"].execution_time
        )

    def test_adaptive_reduces_queueing(self, results):
        """Fewer protocol messages -> less controller queueing."""
        assert (
            results["basic"].queue_wait_cycles
            < results["conventional"].queue_wait_cycles
        )

    def test_read_miss_latency_improves_via_contention(self, results):
        """The paper's surprising effect: read misses get faster even
        though their own message count is unchanged."""
        assert (
            results["basic"].mean_read_miss_latency
            < results["conventional"].mean_read_miss_latency
        )


class TestContentionExperiment:
    def test_shapes(self):
        from repro.experiments import common, contention

        common.clear_caches()
        rows = contention.run(apps=("water",), scale=0.25, num_procs=8)
        row = rows[0]
        assert row.time_reduction_pct > 0
        assert row.read_miss_latency_reduction_pct > 0
        assert row.adaptive_contention_share <= row.base_contention_share
        assert "contention" in contention.render(rows)
