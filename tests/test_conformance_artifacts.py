"""Reproducer artifact round-trips and schema guarding."""

import json

import pytest

from repro.common.errors import TraceError
from repro.conformance import artifacts
from repro.conformance.fuzzer import generate_case
from repro.conformance.oracle import CaseFailure


class TestRoundTrip:
    def test_save_then_load_preserves_case(self, tmp_path):
        case = generate_case(3, "adversarial")
        failure = CaseFailure("invariants", "directory[basic]", "detail")
        path = artifacts.save_reproducer(
            tmp_path, case, failure, notes="round trip"
        )
        assert path == tmp_path / "adversarial-seed00003"
        loaded, sidecar = artifacts.load_reproducer(path)
        assert list(loaded.trace) == list(case.trace)
        assert (loaded.seed, loaded.profile, loaded.num_procs,
                loaded.block_size, loaded.cache_size, loaded.associativity,
                loaded.replacement) == \
               (case.seed, case.profile, case.num_procs, case.block_size,
                case.cache_size, case.associativity, case.replacement)
        assert sidecar["failure"] == {
            "stage": "invariants",
            "engine": "directory[basic]",
            "detail": "detail",
        }
        assert sidecar["notes"] == "round trip"

    def test_passing_trace_has_null_failure(self, tmp_path):
        case = generate_case(0, "migratory")
        path = artifacts.save_reproducer(tmp_path, case)
        _, sidecar = artifacts.load_reproducer(path)
        assert sidecar["failure"] is None

    def test_iter_reproducers_sorted(self, tmp_path):
        for seed in (5, 1, 3):
            artifacts.save_reproducer(
                tmp_path, generate_case(seed, "uniform")
            )
        names = [path.name for path, _, _ in
                 artifacts.iter_reproducers(tmp_path)]
        assert names == [
            "uniform-seed00001", "uniform-seed00003", "uniform-seed00005",
        ]

    def test_iter_on_missing_root_is_empty(self, tmp_path):
        assert list(artifacts.iter_reproducers(tmp_path / "nowhere")) == []


class TestSchemaGuards:
    def test_missing_sidecar_rejected(self, tmp_path):
        (tmp_path / "stray").mkdir()
        with pytest.raises(TraceError, match="no case.json"):
            artifacts.load_reproducer(tmp_path / "stray")

    def test_future_schema_rejected(self, tmp_path):
        case = generate_case(0, "uniform")
        path = artifacts.save_reproducer(tmp_path, case)
        sidecar_path = path / artifacts.CASE_FILE
        sidecar = json.loads(sidecar_path.read_text())
        sidecar["schema_version"] = artifacts.SCHEMA_VERSION + 1
        sidecar_path.write_text(json.dumps(sidecar))
        with pytest.raises(TraceError, match="schema version"):
            artifacts.load_reproducer(path)
