"""Unit tests for the off-line sharing-pattern classifier."""

from repro.analysis.classify import (
    SharingPattern,
    classify_trace,
    profile_blocks,
    summarize_sharing,
)
from repro.common.types import read, write
from repro.trace import synth
from repro.trace.core import Trace


class TestProfiles:
    def test_episode_splitting(self):
        trace = Trace([read(0, 0), write(0, 0), read(1, 0), write(1, 0),
                       read(0, 0)])
        prof = profile_blocks(trace, 16)[0]
        assert len(prof.episodes) == 3
        assert prof.episodes == [(0, True), (1, True), (0, False)]
        assert prof.migrations == 2

    def test_counts(self):
        trace = Trace([read(0, 0), write(1, 4), read(2, 8)])
        prof = profile_blocks(trace, 16)[0]
        assert prof.accesses == 3
        assert prof.reads == 2 and prof.writes == 1
        assert prof.readers == {0, 2} and prof.writers == {1}

    def test_block_granularity(self):
        trace = Trace([read(0, 0), read(0, 16), read(0, 32)])
        assert set(profile_blocks(trace, 16)) == {0, 1, 2}
        assert set(profile_blocks(trace, 64)) == {0}


class TestClassification:
    def test_private(self):
        trace = Trace([read(3, 0), write(3, 4), read(3, 8)])
        assert classify_trace(trace)[0] is SharingPattern.PRIVATE

    def test_read_only(self):
        trace = Trace([read(0, 0), read(1, 0), read(2, 4)])
        assert classify_trace(trace)[0] is SharingPattern.READ_ONLY

    def test_migratory(self):
        accs = []
        for proc in (0, 1, 2, 3, 0, 2):
            accs += [read(proc, 0), write(proc, 4)]
        assert classify_trace(Trace(accs))[0] is SharingPattern.MIGRATORY

    def test_producer_consumer(self):
        accs = []
        for _ in range(4):
            accs.append(write(0, 0))
            accs += [read(1, 0), read(2, 0)]
        assert classify_trace(Trace(accs))[0] is SharingPattern.PRODUCER_CONSUMER

    def test_other_for_read_dominated_multiwriter(self):
        accs = [write(0, 0), write(1, 0)]
        for proc in (2, 3, 2, 3, 2, 3, 2, 3):
            accs.append(read(proc, 0))
        assert classify_trace(Trace(accs))[0] is SharingPattern.OTHER


class TestGeneratorsClassifyCorrectly:
    """The synthetic generators must produce their nominal patterns."""

    def test_migratory_generator(self):
        trace = synth.migratory(num_procs=8, num_objects=4, visits=20, seed=1)
        patterns = classify_trace(trace, 16).values()
        assert all(p is SharingPattern.MIGRATORY for p in patterns)

    def test_read_shared_generator(self):
        trace = synth.read_shared(num_procs=8, num_objects=4, rounds=10, seed=2)
        patterns = classify_trace(trace, 16).values()
        assert all(
            p in (SharingPattern.PRODUCER_CONSUMER, SharingPattern.OTHER,
                  SharingPattern.READ_ONLY)
            for p in patterns
        )

    def test_private_generator(self):
        trace = synth.private(num_procs=4, seed=3)
        patterns = classify_trace(trace, 16).values()
        assert all(p is SharingPattern.PRIVATE for p in patterns)

    def test_false_sharing_masks_migratory_at_large_blocks(self):
        """The Table 3 effect: independently migrating objects packed
        into one large block interleave and stop looking migratory."""
        objects = [
            synth.migratory(num_procs=8, num_objects=1, words_per_object=4,
                            visits=30, base=i * 16, stride=16, seed=i)
            for i in range(4)
        ]
        trace = synth.interleave(objects, chunk=2, seed=9)
        small = summarize_sharing(trace, 16)  # one object per block
        big = summarize_sharing(trace, 64)  # four objects per block
        assert small.block_fraction(SharingPattern.MIGRATORY) > 0.9
        assert big.block_fraction(SharingPattern.MIGRATORY) < 0.5


class TestSummarize:
    def test_fractions_sum_to_one(self):
        trace = synth.migratory(num_procs=4, num_objects=2, visits=10, seed=5)
        summary = summarize_sharing(trace, 16)
        total = sum(
            summary.block_fraction(p) for p in SharingPattern
        )
        assert abs(total - 1.0) < 1e-9

    def test_empty_trace(self):
        summary = summarize_sharing(Trace(), 16)
        assert summary.block_fraction(SharingPattern.MIGRATORY) == 0.0
        assert summary.access_fraction(SharingPattern.PRIVATE) == 0.0
