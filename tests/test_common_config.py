"""Unit tests for repro.common.config."""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import ConfigError


class TestCacheConfig:
    def test_defaults_are_papers(self):
        cfg = CacheConfig()
        assert cfg.block_size == 16
        assert cfg.associativity == 4
        assert cfg.replacement == "lru"

    def test_line_and_set_counts(self):
        cfg = CacheConfig(size_bytes=4096, block_size=16, associativity=4)
        assert cfg.num_lines == 256
        assert cfg.num_sets == 64

    def test_infinite(self):
        cfg = CacheConfig(size_bytes=None)
        assert cfg.is_infinite
        with pytest.raises(ConfigError):
            cfg.num_lines  # noqa: B018 - property raises

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigError):
            CacheConfig(block_size=24)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=0)

    def test_rejects_bad_replacement(self):
        with pytest.raises(ConfigError):
            CacheConfig(replacement="plru")

    def test_rejects_indivisible_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=48, block_size=16, associativity=4)

    def test_rejects_cache_smaller_than_block(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=8, block_size=16)


class TestMachineConfig:
    def test_defaults(self):
        cfg = MachineConfig()
        assert cfg.num_procs == 16
        assert cfg.page_size == 4096
        assert cfg.eviction_notification

    def test_block_and_page_mapping(self):
        cfg = MachineConfig(cache=CacheConfig(block_size=16))
        assert cfg.block_of(0) == 0
        assert cfg.block_of(15) == 0
        assert cfg.block_of(16) == 1
        assert cfg.page_of(4095) == 0
        assert cfg.page_of(4096) == 1

    def test_page_of_block_consistent(self):
        cfg = MachineConfig(cache=CacheConfig(block_size=64))
        for addr in (0, 63, 64, 4095, 4096, 123456):
            assert cfg.page_of_block(cfg.block_of(addr)) == cfg.page_of(
                (addr // 64) * 64
            )

    def test_rejects_bad_procs(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_procs=0)

    def test_rejects_page_smaller_than_block(self):
        with pytest.raises(ConfigError):
            MachineConfig(cache=CacheConfig(block_size=256), page_size=128)
