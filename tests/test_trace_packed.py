"""Tests for the packed columnar trace representation and disk cache."""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import TraceError
from repro.common.types import Op, read, write
from repro.directory.policy import AGGRESSIVE
from repro.system.machine import DirectoryMachine
from repro.trace import diskcache, synth
from repro.trace.core import Trace
from repro.trace.packed import PackedTrace

ACCESSES = [read(0, 0), write(1, 16), read(2, 4096), write(0, 16)]


class TestPackedTrace:
    def test_round_trip_accesses(self):
        packed = PackedTrace.from_accesses(ACCESSES, "t")
        assert packed.to_accesses() == ACCESSES
        assert list(packed) == ACCESSES
        assert len(packed) == 4

    def test_iter_packed_columns(self):
        packed = PackedTrace.from_accesses(ACCESSES, "t")
        rows = list(packed.iter_packed())
        assert rows == [
            (acc.proc, 1 if acc.op is Op.WRITE else 0, acc.addr)
            for acc in ACCESSES
        ]

    def test_blocks_column(self):
        packed = PackedTrace.from_accesses(ACCESSES, "t")
        blocks = packed.blocks_column(4)
        assert list(blocks) == [acc.addr >> 4 for acc in ACCESSES]
        # Memoized per shift: same object back, new column on new shift.
        assert packed.blocks_column(4) is blocks
        assert list(packed.blocks_column(8)) == [
            acc.addr >> 8 for acc in ACCESSES
        ]

    def test_num_procs(self):
        packed = PackedTrace.from_accesses(ACCESSES, "t")
        assert packed.num_procs == 3
        assert PackedTrace.from_accesses([], "e").num_procs == 0

    def test_save_load(self, tmp_path):
        packed = PackedTrace.from_accesses(ACCESSES, "roundtrip")
        path = tmp_path / "t.ptrace"
        packed.save(path)
        loaded = PackedTrace.load(path)
        assert loaded.name == "roundtrip"
        assert loaded.to_accesses() == ACCESSES

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.ptrace"
        path.write_bytes(b"not a packed trace")
        with pytest.raises(TraceError):
            PackedTrace.load(path)


class TestTracePacking:
    def test_pack_is_cached_and_lazy(self):
        trace = Trace(ACCESSES, "t")
        packed = trace.pack()
        assert trace.pack() is packed
        assert packed.to_accesses() == ACCESSES

    def test_mutation_invalidates_pack(self):
        trace = Trace(list(ACCESSES), "t")
        first = trace.pack()
        trace.append(read(3, 32))
        repacked = trace.pack()
        assert repacked is not first
        assert len(repacked) == 5

    def test_from_packed_round_trip(self):
        packed = PackedTrace.from_accesses(ACCESSES, "t")
        trace = Trace.from_packed(packed)
        assert list(trace) == ACCESSES
        assert trace.num_procs == 3

    def test_text_save_load_round_trip(self, tmp_path):
        trace = synth.migratory(num_procs=4, num_objects=2, visits=3, seed=9)
        path = tmp_path / "t.trace"
        trace.save(path)
        assert list(Trace.load(path)) == list(trace)


class TestPackedDeterminism:
    def test_same_seed_same_stats(self):
        """Two same-seed builds replay to identical statistics."""
        cfg = MachineConfig(
            num_procs=8,
            cache=CacheConfig(size_bytes=16 * 1024, block_size=16),
        )
        totals = []
        for _ in range(2):
            trace = synth.interleave(
                [
                    synth.migratory(num_procs=8, num_objects=4, visits=10,
                                    seed=11),
                    synth.read_shared(num_procs=8, num_objects=4, rounds=5,
                                      base=1 << 20, seed=12),
                ],
                chunk=4,
                seed=13,
            )
            machine = DirectoryMachine(cfg, AGGRESSIVE)
            machine.run(trace)
            totals.append(
                (machine.stats.short, machine.stats.data,
                 dict(machine.stats.by_cause_short),
                 dict(machine.stats.by_cause_data))
            )
        assert totals[0] == totals[1]

    def test_packed_matches_generic_path(self):
        cfg = MachineConfig(
            num_procs=8,
            cache=CacheConfig(size_bytes=16 * 1024, block_size=16),
        )
        trace = synth.migratory(num_procs=8, num_objects=4, visits=10, seed=5)
        fast = DirectoryMachine(cfg, AGGRESSIVE)
        fast.run(trace)
        generic = DirectoryMachine(cfg, AGGRESSIVE)
        generic.run(list(trace))
        assert fast.stats.total == generic.stats.total
        assert fast.cache_stats == generic.cache_stats


class TestDiskCache:
    def test_load_or_build_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        calls = []

        def builder(app, num_procs, seed, scale):
            calls.append(app)
            return synth.migratory(num_procs=num_procs, num_objects=2,
                                   visits=3, seed=seed)

        first = diskcache.load_or_build("toy", 4, 1, 1.0, builder)
        second = diskcache.load_or_build("toy", 4, 1, 1.0, builder)
        assert calls == ["toy"]  # second call served from disk
        assert list(first.iter_packed()) == list(second.iter_packed())

    def test_disable_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert diskcache.cache_dir() is None
        calls = []

        def builder(app, num_procs, seed, scale):
            calls.append(app)
            return synth.migratory(num_procs=num_procs, num_objects=2,
                                   visits=3, seed=seed)

        diskcache.load_or_build("toy", 4, 1, 1.0, builder)
        diskcache.load_or_build("toy", 4, 1, 1.0, builder)
        assert calls == ["toy", "toy"]  # rebuilt every time

    def test_key_distinguishes_parameters(self):
        keys = {
            diskcache.trace_key("a", 16, 0, 1.0),
            diskcache.trace_key("a", 16, 0, 0.5),
            diskcache.trace_key("a", 16, 1, 1.0),
            diskcache.trace_key("a", 8, 0, 1.0),
            diskcache.trace_key("b", 16, 0, 1.0),
        }
        assert len(keys) == 5
