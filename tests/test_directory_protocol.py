"""Unit tests for the Figure 3 classification state machine.

These tests drive :class:`DirectoryProtocol` directly with event sequences
and check the resulting directory states, independent of caches and
message accounting.
"""

from repro.directory.entry import DirState
from repro.directory.policy import (
    AGGRESSIVE,
    BASIC,
    CONSERVATIVE,
    CONVENTIONAL,
    AdaptivePolicy,
)
from repro.directory.protocol import DirectoryProtocol

B = 7  # arbitrary block id used throughout


class TestInitialState:
    def test_default_uncached(self):
        p = DirectoryProtocol(BASIC)
        assert p.entry(B).state is DirState.UNCACHED

    def test_aggressive_starts_migratory(self):
        p = DirectoryProtocol(AGGRESSIVE)
        assert p.entry(B).state is DirState.UNCACHED_MIG
        assert p.is_migratory(B)

    def test_is_migratory_without_entry(self):
        assert DirectoryProtocol(AGGRESSIVE).is_migratory(B)
        assert not DirectoryProtocol(BASIC).is_migratory(B)

    def test_peek_does_not_create(self):
        p = DirectoryProtocol(BASIC)
        assert p.peek(B) is None
        p.entry(B)
        assert p.peek(B) is not None


class TestCopyCounting:
    def test_read_misses_count_copies_created(self):
        p = DirectoryProtocol(CONVENTIONAL)
        assert p.read_miss(B, 0, dirty=False) is False
        assert p.entry(B).state is DirState.ONE_COPY
        p.read_miss(B, 1, dirty=False)
        assert p.entry(B).state is DirState.TWO_COPIES
        p.read_miss(B, 2, dirty=False)
        assert p.entry(B).state is DirState.THREE_PLUS
        p.read_miss(B, 3, dirty=False)
        assert p.entry(B).state is DirState.THREE_PLUS

    def test_write_miss_resets_to_one_copy(self):
        p = DirectoryProtocol(CONVENTIONAL)
        for proc in range(3):
            p.read_miss(B, proc, dirty=False)
        p.write_miss(B, 5, dirty=False)
        assert p.entry(B).state is DirState.ONE_COPY
        assert p.entry(B).last_invalidator == 5

    def test_uncached_transition(self):
        p = DirectoryProtocol(BASIC)
        p.read_miss(B, 0, dirty=False)
        p.note_uncached(B)
        assert p.entry(B).state is DirState.UNCACHED


class TestBasicDetection:
    """Single-event classification (basic protocol)."""

    def test_write_hit_two_copies_promotes(self):
        p = DirectoryProtocol(BASIC)
        p.write_miss(B, 0, dirty=False)  # P0 writes: ONE_COPY, last_inv=0
        p.read_miss(B, 1, dirty=True)  # P1 replicates: TWO_COPIES
        assert p.entry(B).state is DirState.TWO_COPIES
        p.write_hit(B, 1, sole_copy=False)  # newer copy writes: evidence
        assert p.entry(B).state is DirState.ONE_COPY_MIG
        assert p.is_migratory(B)

    def test_write_hit_by_last_invalidator_is_not_evidence(self):
        p = DirectoryProtocol(BASIC)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        # P0 writes again: it was the last invalidator, so not migratory.
        p.write_hit(B, 0, sole_copy=False)
        assert p.entry(B).state is DirState.ONE_COPY

    def test_write_hit_three_copies_is_not_evidence(self):
        p = DirectoryProtocol(BASIC)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        p.read_miss(B, 2, dirty=False)
        assert p.entry(B).state is DirState.THREE_PLUS
        p.write_hit(B, 1, sole_copy=False)
        assert p.entry(B).state is DirState.ONE_COPY

    def test_write_miss_single_copy_promotes(self):
        p = DirectoryProtocol(BASIC)
        p.write_miss(B, 0, dirty=False)  # ONE_COPY, last_inv=0
        p.write_miss(B, 1, dirty=True)  # single-copy write miss: evidence
        assert p.entry(B).state is DirState.ONE_COPY_MIG

    def test_write_hit_sole_copy_promotes(self):
        """Write hit on a clean exclusively-held block (reload case)."""
        p = DirectoryProtocol(BASIC)
        p.write_miss(B, 0, dirty=False)
        p.note_uncached(B)  # evicted everywhere; classification kept
        p.read_miss(B, 1, dirty=False)  # reloaded by another node
        assert p.entry(B).state is DirState.ONE_COPY
        p.write_hit(B, 1, sole_copy=True)
        assert p.entry(B).state is DirState.ONE_COPY_MIG


class TestMigratoryMode:
    def _migratory(self):
        p = DirectoryProtocol(BASIC)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        p.write_hit(B, 1, sole_copy=False)
        assert p.entry(B).state is DirState.ONE_COPY_MIG
        return p

    def test_read_miss_dirty_migrates(self):
        p = self._migratory()
        assert p.read_miss(B, 2, dirty=True) is True
        assert p.entry(B).state is DirState.ONE_COPY_MIG

    def test_read_miss_clean_demotes(self):
        p = self._migratory()
        assert p.read_miss(B, 2, dirty=False) is False
        assert p.entry(B).state is DirState.TWO_COPIES
        assert not p.is_migratory(B)

    def test_write_miss_clean_demotes(self):
        p = self._migratory()
        p.write_miss(B, 2, dirty=False)
        assert p.entry(B).state is DirState.ONE_COPY

    def test_write_miss_dirty_stays_migratory(self):
        p = self._migratory()
        p.write_miss(B, 2, dirty=True)
        assert p.entry(B).state is DirState.ONE_COPY_MIG

    def test_uncached_remembers_classification(self):
        p = self._migratory()
        p.note_uncached(B)
        assert p.entry(B).state is DirState.UNCACHED_MIG
        assert p.read_miss(B, 3, dirty=False) is True  # migrate on reload
        assert p.entry(B).state is DirState.ONE_COPY_MIG

    def test_write_miss_on_uncached_migratory_stays_migratory(self):
        p = self._migratory()
        p.note_uncached(B)
        p.write_miss(B, 3, dirty=False)
        assert p.entry(B).state is DirState.ONE_COPY_MIG


class TestConservativeHysteresis:
    def test_needs_two_successive_events(self):
        p = DirectoryProtocol(CONSERVATIVE)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        p.write_hit(B, 1, sole_copy=False)  # first evidence
        assert p.entry(B).state is DirState.ONE_COPY
        assert p.entry(B).streak == 1
        p.read_miss(B, 2, dirty=True)
        p.write_hit(B, 2, sole_copy=False)  # second evidence
        assert p.entry(B).state is DirState.ONE_COPY_MIG

    def test_non_evidence_write_resets_streak(self):
        p = DirectoryProtocol(CONSERVATIVE)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        p.write_hit(B, 1, sole_copy=False)  # evidence, streak=1
        p.read_miss(B, 2, dirty=True)
        p.read_miss(B, 3, dirty=False)  # three copies now
        p.write_hit(B, 2, sole_copy=False)  # NOT evidence: resets
        assert p.entry(B).streak == 0
        assert p.entry(B).state is DirState.ONE_COPY

    def test_demotion_resets_streak(self):
        p = DirectoryProtocol(CONSERVATIVE)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        p.write_hit(B, 1, sole_copy=False)
        p.read_miss(B, 2, dirty=True)
        p.write_hit(B, 2, sole_copy=False)
        assert p.entry(B).state is DirState.ONE_COPY_MIG
        p.read_miss(B, 3, dirty=False)  # clean migratory: demote
        assert p.entry(B).state is DirState.TWO_COPIES
        assert p.entry(B).streak == 0

    def test_deep_hysteresis(self):
        p = DirectoryProtocol(AdaptivePolicy("deep", migratory_threshold=3))
        p.write_miss(B, 0, dirty=False)
        for proc in (1, 2):
            p.read_miss(B, proc, dirty=True)
            p.write_hit(B, proc, sole_copy=False)
            assert p.entry(B).state is DirState.ONE_COPY
        p.read_miss(B, 3, dirty=True)
        p.write_hit(B, 3, sole_copy=False)
        assert p.entry(B).state is DirState.ONE_COPY_MIG


class TestConventional:
    def test_never_classifies(self):
        p = DirectoryProtocol(CONVENTIONAL)
        for round_ in range(5):
            proc = round_ % 4
            p.read_miss(B, proc, dirty=round_ > 0)
            p.write_hit(B, proc, sole_copy=False)
        assert not p.is_migratory(B)
        assert p.read_miss(B, 9, dirty=True) is False


class TestForgetfulPolicy:
    def test_forgets_on_uncached(self):
        policy = AdaptivePolicy("forgetful", migratory_threshold=1,
                                remember_uncached=False)
        p = DirectoryProtocol(policy)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        p.write_hit(B, 1, sole_copy=False)
        assert p.entry(B).state is DirState.ONE_COPY_MIG
        p.note_uncached(B)
        assert p.entry(B).state is DirState.UNCACHED
        assert p.entry(B).last_invalidator is None
        assert p.read_miss(B, 2, dirty=False) is False

    def test_forgetful_aggressive_reverts_to_migratory(self):
        policy = AdaptivePolicy("forgetful-aggr", migratory_threshold=1,
                                initial_migratory=True, remember_uncached=False)
        p = DirectoryProtocol(policy)
        # Demote the block, then drop it: classification reverts to initial.
        p.read_miss(B, 0, dirty=False)  # UNCACHED_MIG -> ONE_COPY_MIG (migrate)
        p.read_miss(B, 1, dirty=False)  # clean: demote to TWO_COPIES
        assert p.entry(B).state is DirState.TWO_COPIES
        p.note_uncached(B)
        assert p.entry(B).state is DirState.UNCACHED_MIG


class TestTransitionCounters:
    """The aggregate ``transitions`` counter mirrors state changes."""

    def test_fresh_protocol_has_no_transitions(self):
        assert DirectoryProtocol(BASIC).transitions == {}

    def test_promote_counted_once(self):
        p = DirectoryProtocol(BASIC)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        p.write_hit(B, 1, sole_copy=False)
        assert p.transitions["promote"] == 1
        assert p.transitions["demote"] == 0
        assert p.transitions["evidence"] == 0

    def test_read_miss_demotion_counted(self):
        p = DirectoryProtocol(BASIC)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        p.write_hit(B, 1, sole_copy=False)  # promote
        p.read_miss(B, 2, dirty=False)  # clean migratory read: demote
        assert p.transitions["demote"] == 1

    def test_write_miss_demotion_counted(self):
        p = DirectoryProtocol(BASIC)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        p.write_hit(B, 1, sole_copy=False)  # promote
        p.write_miss(B, 2, dirty=False)  # clean: counter-evidence, demote
        assert p.transitions["demote"] == 1
        assert p.transitions["promote"] == 1

    def test_conservative_counts_evidence_below_threshold(self):
        p = DirectoryProtocol(CONSERVATIVE)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        p.write_hit(B, 1, sole_copy=False)  # evidence (streak 1 of 2)
        assert p.transitions["evidence"] == 1
        assert p.transitions["promote"] == 0
        p.read_miss(B, 2, dirty=True)
        p.write_hit(B, 2, sole_copy=False)  # second event promotes
        assert p.transitions["evidence"] == 1
        assert p.transitions["promote"] == 1

    def test_conventional_never_transitions(self):
        p = DirectoryProtocol(CONVENTIONAL)
        for round_ in range(5):
            proc = round_ % 4
            p.read_miss(B, proc, dirty=round_ > 0)
            p.write_hit(B, proc, sole_copy=False)
        assert p.transitions == {}

    def test_forgetting_reset_counted_as_forget_not_demote(self):
        policy = AdaptivePolicy("forgetful", migratory_threshold=1,
                                remember_uncached=False)
        p = DirectoryProtocol(policy)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        p.write_hit(B, 1, sole_copy=False)  # promote
        p.note_uncached(B)  # flag flips via the reset
        assert p.transitions["forget"] == 1
        assert p.transitions["demote"] == 0

    def test_remembering_uncached_is_not_a_transition(self):
        p = DirectoryProtocol(BASIC)
        p.write_miss(B, 0, dirty=False)
        p.read_miss(B, 1, dirty=True)
        p.write_hit(B, 1, sole_copy=False)  # promote
        p.note_uncached(B)  # stays migratory across the uncached interval
        assert p.transitions["forget"] == 0
        assert p.transitions["demote"] == 0
