"""Golden regression tests: exact message/transaction counts.

These pin the simulators' outputs on a fixed mixed workload (seeded, so
fully deterministic).  They exist to catch *unintended* behaviour changes
in the protocols or cost accounting — if a change is intentional, update
the constants and say why in the commit.

The workload mixes all five canonical sharing patterns over an
8-processor machine with deliberately tiny (2 KB) caches so that the
replacement, notification, and classification-memory paths are all
exercised.
"""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.directory.policy import PAPER_POLICIES
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import (
    AdaptiveSnoopingProtocol,
    AlwaysMigrateProtocol,
    MesiProtocol,
)
from repro.snooping.update_protocols import (
    CompetitiveUpdateProtocol,
    WriteUpdateProtocol,
)
from repro.system.machine import DirectoryMachine
from repro.trace import synth


def golden_trace():
    return synth.interleave(
        [
            synth.migratory(num_procs=8, num_objects=6, visits=40, seed=11),
            synth.read_shared(num_procs=8, num_objects=6, rounds=15,
                              base=1 << 16, seed=12),
            synth.producer_consumer(num_procs=8, num_objects=4, rounds=15,
                                    consumers=3, base=1 << 17, seed=13),
            synth.false_sharing(num_procs=8, num_blocks=4, rounds=15,
                                base=1 << 18, seed=14),
            synth.private(num_procs=8, accesses_per_proc=100,
                          base=1 << 19, seed=15),
        ],
        chunk=5,
        seed=16,
    )


CONFIG = MachineConfig(
    num_procs=8, cache=CacheConfig(size_bytes=2048, block_size=16)
)

DIRECTORY_GOLDEN = {
    "conventional": (4273, 1463),
    "conservative": (1935, 1463),
    "basic": (1885, 1463),
    "aggressive": (1854, 1466),
}

BUS_GOLDEN = {
    # (read_miss, write_miss, invalidation, writeback, update)
    "mesi": (1008, 53, 743, 2, 0),
    "adaptive": (1008, 53, 70, 2, 0),
    "adaptive-initial-migratory": (1014, 57, 52, 2, 0),
    "always-migrate": (1014, 109, 0, 0, 0),
    "write-update": (263, 53, 0, 4, 1164),
    "competitive-update(1)": (986, 53, 0, 4, 1052),
}


def test_golden_trace_is_stable():
    trace = golden_trace()
    assert len(trace) == 5144


@pytest.mark.parametrize("policy", PAPER_POLICIES, ids=lambda p: p.name)
def test_directory_golden(policy):
    machine = DirectoryMachine(CONFIG, policy, check=True)
    machine.run(golden_trace())
    assert machine.stats.snapshot() == DIRECTORY_GOLDEN[policy.name]


@pytest.mark.parametrize(
    "make_protocol",
    [
        MesiProtocol,
        AdaptiveSnoopingProtocol,
        lambda: AdaptiveSnoopingProtocol(initial_migratory=True),
        AlwaysMigrateProtocol,
        WriteUpdateProtocol,
        lambda: CompetitiveUpdateProtocol(threshold=1),
    ],
    ids=list(BUS_GOLDEN),
)
def test_bus_golden(make_protocol):
    protocol = make_protocol()
    machine = BusMachine(CONFIG, protocol, check=True)
    machine.run(golden_trace())
    stats = machine.bus_stats
    assert (
        stats.read_miss,
        stats.write_miss,
        stats.invalidation,
        stats.writeback,
        stats.update,
    ) == BUS_GOLDEN[protocol.name]


def test_golden_ordering_story():
    """The headline narrative, pinned end-to-end on one workload: the
    adaptive protocol removes most invalidation transactions relative to
    MESI while adding no misses, and the directory family's totals are
    strictly ordered."""
    d = {name: sum(v) for name, v in DIRECTORY_GOLDEN.items()}
    assert (
        d["aggressive"] < d["basic"] < d["conservative"] < d["conventional"]
    )
    mesi = BUS_GOLDEN["mesi"]
    adaptive = BUS_GOLDEN["adaptive"]
    assert adaptive[0] == mesi[0]  # identical read misses
    assert adaptive[2] < mesi[2] / 10  # >90% of invalidations removed
