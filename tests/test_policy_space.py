"""Tests for the policy-space map (the conclusions' claim as a surface)."""

import pytest

from repro.experiments import common, policy_space


@pytest.fixture(autouse=True, scope="module")
def _fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


def test_grid_is_complete():
    grid = policy_space.policy_grid()
    assert len(grid) == 3 * 2 * 2
    names = {p.name for p in grid}
    assert "t1-mig-mem" in names and "t3-non-fgt" in names


class TestPolicySurface:
    @pytest.fixture(scope="class")
    def rows(self):
        return policy_space.run(
            apps=("mp3d",), cache_size=4096, scale=0.25, num_procs=8
        )

    def test_winner_is_the_papers_corner(self, rows):
        """Immediate reclassification + initial migratory (+ memory)."""
        best = policy_space.best_point(rows, "mp3d")
        assert best.threshold == 1
        assert best.initial_migratory

    def test_memory_helps_non_migratory_initial(self, rows):
        """Remembering across uncached intervals beats forgetting for
        every threshold when blocks start non-migratory."""
        table = {
            (r.threshold, r.initial_migratory, r.remember_uncached): r
            for r in rows
        }
        for threshold in (1, 2, 3):
            remember = table[(threshold, False, True)]
            forget = table[(threshold, False, False)]
            assert remember.reduction_pct >= forget.reduction_pct - 0.2

    def test_shallower_hysteresis_always_helps(self, rows):
        """t1 >= t2 >= t3 within each (initial, memory) slice."""
        table = {
            (r.threshold, r.initial_migratory, r.remember_uncached): r
            for r in rows
        }
        for initial in (False, True):
            for memory in (True, False):
                r1 = table[(1, initial, memory)].reduction_pct
                r2 = table[(2, initial, memory)].reduction_pct
                r3 = table[(3, initial, memory)].reduction_pct
                assert r1 >= r2 - 0.3 >= r3 - 0.6, (initial, memory)

    def test_every_point_beats_conventional(self, rows):
        for row in rows:
            assert row.reduction_pct > 0, row

    def test_render(self, rows):
        text = policy_space.render(rows)
        assert "t1-mig-mem" in text
