"""Tests for classification tracing and block explanation."""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import read, write
from repro.directory.entry import DirState
from repro.directory.policy import BASIC, CONSERVATIVE
from repro.directory.tracing import (
    TracingDirectoryProtocol,
    explain_block,
    trace_classification,
)
from repro.trace.core import Trace


def config():
    return MachineConfig(
        num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
    )


MIGRATION = Trace([
    write(1, 0),
    read(2, 0), write(2, 0),
    read(3, 0), write(3, 0),
])


class TestTracingProtocol:
    def test_behaves_identically_to_untraced(self):
        from repro.system.machine import DirectoryMachine

        plain = DirectoryMachine(config(), BASIC)
        plain.run(MIGRATION)
        traced_machine, _tracer = trace_classification(
            MIGRATION, BASIC, config()
        )
        assert traced_machine.stats.snapshot() == plain.stats.snapshot()

    def test_events_recorded_in_order(self):
        _machine, tracer = trace_classification(MIGRATION, BASIC, config())
        events = tracer.events_for(0)
        kinds = [e.kind for e in events]
        # P3's write is silent (the block migrated in with write
        # permission), so it never reaches the directory.
        assert kinds == ["write_miss", "read_miss", "write_hit", "read_miss"]
        assert [e.index for e in events] == sorted(e.index for e in events)

    def test_promotion_flagged(self):
        _machine, tracer = trace_classification(MIGRATION, BASIC, config())
        promotions = [e for e in tracer.events_for(0) if e.promoted]
        assert len(promotions) == 1
        event = promotions[0]
        assert event.kind == "write_hit" and event.proc == 2
        assert event.after is DirState.ONE_COPY_MIG

    def test_conservative_promotes_later(self):
        _machine, tracer = trace_classification(
            MIGRATION, CONSERVATIVE, config()
        )
        promotions = [e for e in tracer.events_for(0) if e.promoted]
        assert len(promotions) == 1
        assert promotions[0].proc == 3  # second evidence event

    def test_demotion_flagged(self):
        trace = Trace([
            write(1, 0), read(2, 0), write(2, 0),  # promote
            read(3, 0),  # migrate to P3 (clean)
            read(1, 0),  # clean migratory: demote
        ])
        _machine, tracer = trace_classification(trace, BASIC, config())
        demotions = [e for e in tracer.events_for(0) if e.demoted]
        assert len(demotions) == 1
        assert demotions[0].kind == "read_miss"

    def test_blocks_isolated(self):
        trace = Trace([write(1, 0), write(2, 64)])
        _machine, tracer = trace_classification(trace, BASIC, config())
        assert len(tracer.events_for(0)) == 1
        assert len(tracer.events_for(4)) == 1


class TestExplainBlock:
    def test_untouched_block(self):
        tracer = TracingDirectoryProtocol(BASIC)
        lines = explain_block(tracer, 99)
        assert "never touched" in lines[0]

    def test_story_lines(self):
        _machine, tracer = trace_classification(MIGRATION, BASIC, config())
        lines = explain_block(tracer, 0)
        text = "\n".join(lines)
        assert "classified migratory" in text
        assert "1 promotion(s), 0 demotion(s)" in text
        assert "final state one copy/migratory" in text
