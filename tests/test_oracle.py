"""Tests for the read-exclusive oracle and hinted machine runs."""

import pytest

from repro.analysis.oracle import hint_coverage, read_exclusive_hints
from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import read, write
from repro.directory.policy import AGGRESSIVE, CONVENTIONAL
from repro.system.machine import CState, DirectoryMachine
from repro.trace import synth
from repro.trace.core import Trace


class TestHintComputation:
    def test_read_then_write_same_proc_hinted(self):
        trace = [read(1, 0), write(1, 0)]
        assert read_exclusive_hints(trace) == [True, False]

    def test_intervening_same_proc_reads_allowed(self):
        trace = [read(1, 0), read(1, 4), write(1, 8)]  # same block
        assert read_exclusive_hints(trace) == [True, True, False]

    def test_other_proc_access_breaks_episode(self):
        trace = [read(1, 0), read(2, 0), write(1, 0)]
        # P1's read is followed by P2's access before P1's write.
        assert read_exclusive_hints(trace) == [False, False, False]

    def test_read_only_never_hinted(self):
        trace = [read(1, 0), read(2, 0), read(1, 0)]
        assert read_exclusive_hints(trace) == [False, False, False]

    def test_blocks_independent(self):
        trace = [read(1, 0), read(2, 16), write(1, 0)]
        # P2 touched a *different* block; P1's episode is intact.
        assert read_exclusive_hints(trace, block_size=16) == [
            True, False, False,
        ]

    def test_coverage(self):
        trace = [read(1, 0), write(1, 0), read(2, 0)]
        hints = read_exclusive_hints(trace)
        assert hint_coverage(hints, trace) == pytest.approx(0.5)

    def test_coverage_empty(self):
        assert hint_coverage([], []) == 0.0

    def test_migratory_trace_mostly_hinted(self):
        trace = synth.migratory(num_procs=4, num_objects=2, visits=20,
                                reads_per_visit=2, writes_per_visit=1,
                                seed=3)
        hints = read_exclusive_hints(list(trace))
        assert hint_coverage(hints, list(trace)) > 0.9


class TestHintedMachine:
    def machine(self, policy=CONVENTIONAL):
        cfg = MachineConfig(
            num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
        )
        return DirectoryMachine(cfg, policy, check=True)

    def test_hinted_read_fetches_ownership(self):
        m = self.machine()
        m.access(1, False, 0, exclusive_hint=True)
        line = m.caches[1].lookup(0)
        assert line.state is CState.EXCL and not line.dirty
        before = m.stats.snapshot()
        m.access(1, True, 0)  # silent: ownership already held
        assert m.stats.snapshot() == before

    def test_hinted_read_invalidates_sharers(self):
        m = self.machine()
        m.access(2, False, 0)
        m.access(3, False, 0)
        m.access(1, False, 0, exclusive_hint=True)
        assert m.caches[2].lookup(0) is None
        assert m.caches[3].lookup(0) is None

    def test_hint_ignored_on_hit(self):
        m = self.machine()
        m.access(1, False, 0)
        before = m.stats.snapshot()
        m.access(1, False, 0, exclusive_hint=True)  # hit: no effect
        assert m.stats.snapshot() == before
        assert m.caches[1].lookup(0).state is CState.SHARED

    def test_exclusive_clean_copy_demoted_by_other_reader(self):
        m = self.machine()
        m.access(1, False, 0, exclusive_hint=True)
        m.access(2, False, 0)  # must revoke P1's write permission
        assert m.caches[1].lookup(0).state is CState.SHARED
        assert m.caches[2].lookup(0).state is CState.SHARED
        # writes by P1 now require an upgrade (checker enforces safety)
        m.access(1, True, 0)
        assert m.caches[2].lookup(0) is None

    def test_oracle_matches_adaptive_on_migratory(self):
        trace = synth.migratory(num_procs=4, num_objects=4, visits=40,
                                seed=5)
        hints = read_exclusive_hints(list(trace))
        conv = self.machine()
        conv.run(trace)
        oracle = self.machine()
        oracle.run_with_hints(trace, hints)
        adaptive = self.machine(AGGRESSIVE)
        adaptive.run(trace)
        assert oracle.stats.total < conv.stats.total
        # the oracle is at least as good as the best on-line protocol
        assert oracle.stats.total <= adaptive.stats.total * 1.02

    def test_hints_preserve_coherence_on_mixed_traffic(self):
        traces = [
            synth.migratory(num_procs=4, num_objects=3, visits=25, seed=1),
            synth.read_shared(num_procs=4, num_objects=3, rounds=10,
                              base=1 << 16, seed=2),
            synth.false_sharing(num_procs=4, num_blocks=3, rounds=10,
                                base=1 << 17, seed=3),
        ]
        mixed = synth.interleave(traces, chunk=3, seed=4)
        hints = read_exclusive_hints(list(mixed))
        m = self.machine()
        m.run_with_hints(mixed, hints)  # checker validates every access

    def test_by_cause_accounting(self):
        m = self.machine()
        m.access(1, False, 0, exclusive_hint=True)
        assert m.stats.by_cause_short.get("read_exclusive", 0) >= 1
