"""In-process tests of the asyncio serving layer.

Each test spins a real :class:`CoherenceService` on an ephemeral port
inside ``asyncio.run`` (the suite has no async test runner) with one
worker — thread execution, no spawn cost — and a test-private result
cache so cold/warm expectations are deterministic.  Workload scale is
tiny: these are protocol and coalescing tests, not performance runs.
"""

import asyncio
import time

import pytest

from repro.service import worker
from repro.service.client import (
    AsyncServiceClient,
    Backpressure,
    ServiceError,
    metric_value,
    parse_metrics_text,
)
from repro.service.server import CoherenceService, ServiceConfig

#: Small enough for interactive tests, real enough to exercise the
#: machines end to end.
SCALE = 0.02

SPEC = {"engine": "directory", "app": "water", "policy": "basic",
        "cache_size": 64 * 1024, "scale": SCALE}


@pytest.fixture(autouse=True)
def _private_cache(tmp_path, monkeypatch):
    """Fresh result cache per test: every first replay is a true miss.

    Both layers matter: the on-disk directory (env var) and the
    in-process memo dict, which outlives the env override.
    """
    from repro.experiments import resultcache

    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "results"))
    resultcache.clear_memory()
    yield
    resultcache.clear_memory()


def run_with_server(body, **config_kwargs):
    """Start a server, run ``await body(service, client)``, drain."""
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("jobs", 1)

    async def main():
        service = CoherenceService(ServiceConfig(**config_kwargs))
        await service.start()
        client = AsyncServiceClient("127.0.0.1", service.port)
        try:
            return await body(service, client)
        finally:
            await service.drain()

    return asyncio.run(main())


class TestEndpoints:
    def test_healthz(self):
        async def body(service, client):
            health = await client.healthz()
            assert health["status"] == "ok"
            assert health["protocol_version"] == 1
            assert health["workers"] == 1
            assert health["queue_depth"] == 0

        run_with_server(body)

    def test_replay_roundtrip_and_cache_hit(self):
        async def body(service, client):
            first = await client.replay(**SPEC)
            assert first["type"] == "replay"
            assert first["cached"] is False
            assert first["result"]["short"] > 0
            second = await client.replay(**SPEC)
            assert second["cached"] is True
            assert second["result"] == first["result"]
            samples = await client.metrics()
            assert metric_value(
                samples, "repro_result_cache_requests_total",
                kind="directory", status="hit") == 1
            assert metric_value(
                samples, "repro_service_executions_total",
                kind="directory") == 1
            # Only admitted queries count as served work; the /metrics
            # GET above does not.
            assert service.served == 2

        run_with_server(body)

    def test_bus_replay(self):
        async def body(service, client):
            response = await client.replay(
                engine="bus", app="water", policy="mesi", scale=SCALE
            )
            assert response["cached"] is False
            assert set(response["result"]) >= {"read_miss", "write_miss"}

        run_with_server(body)

    def test_compare_ranks_policies(self):
        async def body(service, client):
            response = await client.compare(
                policies=["conventional", "basic"], app="water",
                cache_size=64 * 1024, scale=SCALE,
            )
            assert response["type"] == "compare"
            assert set(response["totals"]) == {"conventional", "basic"}
            assert response["cheapest"] in response["totals"]
            # The adaptive protocol never loses to conventional on the
            # migratory-heavy water analogue (the paper's headline).
            assert (response["totals"]["basic"]
                    <= response["totals"]["conventional"])

        run_with_server(body)

    def test_compare_adaptive_families_on_shared_trace(self):
        # The registry question the family subsystem exists to answer:
        # migratory-adaptive vs write-run hybrid vs self-invalidation,
        # priced on one shared trace, one total per family.
        matchup = ["adaptive", "hybrid-update-invalidate",
                   "self-invalidation"]

        async def body(service, client):
            response = await client.compare(
                policies=matchup, engine="bus", app="mp3d", scale=SCALE,
            )
            assert response["type"] == "compare"
            assert set(response["totals"]) == set(matchup)
            assert all(total > 0 for total in response["totals"].values())
            assert response["cheapest"] in matchup
            # mp3d is the migratory-heavy analogue: the paper's
            # adaptive protocol wins its home ground.
            assert response["cheapest"] == "adaptive"

        run_with_server(body)

    def test_compare_family_directory_machines(self):
        async def body(service, client):
            response = await client.compare(
                policies=["basic", "self-invalidation"], app="water",
                cache_size=64 * 1024, scale=SCALE,
            )
            assert set(response["totals"]) == {"basic", "self-invalidation"}
            assert all(total > 0 for total in response["totals"].values())

        run_with_server(body)

    def test_experiment_renders_and_caches(self):
        async def body(service, client):
            first = await client.experiment(
                "table2", scale=SCALE, apps=["water"]
            )
            assert first["type"] == "experiment"
            assert "water" in first["rendered"]
            second = await client.experiment(
                "table2", scale=SCALE, apps=["water"]
            )
            assert second["cached"] is True
            assert second["rendered"] == first["rendered"]

        run_with_server(body)

    def test_verify_returns_certificate_and_caches(self):
        async def body(service, client):
            first = await client.verify(engine="bus", protocol="mesi")
            assert first["type"] == "verify"
            assert first["ok"] is True
            assert first["cached"] is False
            certificate = first["certificate"]
            assert certificate["kind"] == "repro-verify-certificate"
            assert certificate["totals"]["violations"] == 0
            assert certificate["totals"]["combos"] == 1
            combo = certificate["combos"][0]
            assert combo["label"] == "bus/mesi"
            assert combo["table_digest"]
            second = await client.verify(engine="bus", protocol="mesi")
            assert second["cached"] is True
            assert second["certificate"] == certificate

        run_with_server(body)

    def test_verify_rejects_bad_requests(self):
        async def body(service, client):
            with pytest.raises(ServiceError) as excinfo:
                await client.verify(engine="bus", protocol="nonesuch")
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                await client.verify(num_procs=9)
            assert excinfo.value.status == 400

        run_with_server(body)

    def test_metrics_prometheus_shape(self):
        async def body(service, client):
            await client.replay(**SPEC)
            status, headers, text = await client.request("GET", "/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            samples = parse_metrics_text(text)
            assert metric_value(
                samples, "repro_service_requests_total",
                endpoint="/v1/replay", status="200") == 1

        run_with_server(body)


class TestErrors:
    def test_unknown_path_404(self):
        async def body(service, client):
            status, _, payload = await client.request("GET", "/v2/replay")
            assert status == 404
            assert payload["type"] == "error"

        run_with_server(body)

    def test_wrong_method_405(self):
        async def body(service, client):
            status, _, _ = await client.request("GET", "/v1/replay")
            assert status == 405
            status, _, _ = await client.request("POST", "/healthz", {})
            assert status == 405

        run_with_server(body)

    def test_bad_spec_400(self):
        async def body(service, client):
            with pytest.raises(ServiceError) as excinfo:
                await client.replay(app="doom")
            assert excinfo.value.status == 400
            assert "doom" in excinfo.value.message

        run_with_server(body)

    def test_bad_json_400(self):
        async def body(service, client):
            status, _, payload = await client.request(
                "POST", "/v1/replay", payload=None
            )
            assert status == 400  # empty body
        run_with_server(body)

    def test_wrong_version_400(self):
        async def body(service, client):
            status, _, payload = await client.request(
                "POST", "/v1/replay", {"v": 999, "spec": {}}
            )
            assert status == 400
            assert "protocol version" in payload["error"]

        run_with_server(body)

    def test_malformed_request_line_400(self):
        async def body(service, client):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b"400" in raw.split(b"\r\n", 1)[0]

        run_with_server(body)


class TestSingleFlight:
    def test_identical_requests_coalesce(self, monkeypatch):
        fanout = 6

        def slow_replay(spec_payload, handle):
            # Slow enough that every request in the burst is parked on
            # the leader's future before it resolves: the coalesced
            # flags and counters below become deterministic.
            time.sleep(0.5)
            return {"short": 5, "data": 2, "by_cause_short": {},
                    "by_cause_data": {}}

        monkeypatch.setattr(worker, "run_replay", slow_replay)

        async def body(service, client):
            responses = await asyncio.gather(
                *(client.replay(**SPEC) for _ in range(fanout))
            )
            results = [r["result"] for r in responses]
            assert all(r == results[0] for r in results)
            # Exactly one leader executed; everyone else coalesced.
            assert sorted(r["coalesced"] for r in responses) == \
                [False] + [True] * (fanout - 1)
            samples = await client.metrics()
            assert metric_value(
                samples, "repro_service_executions_total",
                kind="directory") == 1
            assert metric_value(
                samples, "repro_result_cache_requests_total",
                kind="directory", status="miss") == 1
            assert metric_value(
                samples, "repro_service_singleflight_total",
                role="leader") == 1
            assert metric_value(
                samples, "repro_service_singleflight_total",
                role="follower") == fanout - 1

        run_with_server(body)

    def test_distinct_requests_do_not_coalesce(self):
        async def body(service, client):
            a, b = await asyncio.gather(
                client.replay(**SPEC),
                client.replay(**{**SPEC, "policy": "aggressive"}),
            )
            assert a["coalesced"] is False
            assert b["coalesced"] is False
            samples = await client.metrics()
            assert metric_value(
                samples, "repro_service_executions_total",
                kind="directory") == 2

        run_with_server(body)

    def test_leader_failure_propagates_to_followers(self, monkeypatch):
        def boom(spec_payload, handle):
            time.sleep(0.2)
            raise RuntimeError("replay exploded")

        monkeypatch.setattr(worker, "run_replay", boom)

        async def body(service, client):
            outcomes = await asyncio.gather(
                *(client.replay_raw(**SPEC) for _ in range(3))
            )
            assert [status for status, _, _ in outcomes] == [500] * 3

        run_with_server(body)


class TestBackpressure:
    def test_full_queue_sheds_with_retry_after(self, monkeypatch):
        def slow_replay(spec_payload, handle):
            time.sleep(0.5)
            return {"short": 1, "data": 1, "by_cause_short": {},
                    "by_cause_data": {}}

        monkeypatch.setattr(worker, "run_replay", slow_replay)

        async def body(service, client):
            # Distinct specs (different cache sizes) so nothing
            # coalesces: each occupies an admission slot.
            outcomes = await asyncio.gather(*(
                client.replay_raw(**{**SPEC, "cache_size": (8 + i) * 1024})
                for i in range(4)
            ))
            statuses = sorted(status for status, _, _ in outcomes)
            assert statuses.count(429) >= 2
            assert statuses.count(200) >= 1
            for status, headers, payload in outcomes:
                if status == 429:
                    assert headers["retry-after"] == "1"
                    assert "queue full" in payload["error"]

        run_with_server(body, max_queue=1)

    def test_backpressure_exception_carries_retry_after(self, monkeypatch):
        def slow_replay(spec_payload, handle):
            time.sleep(0.5)
            return {"short": 1, "data": 1, "by_cause_short": {},
                    "by_cause_data": {}}

        monkeypatch.setattr(worker, "run_replay", slow_replay)

        async def body(service, client):
            tasks = [
                asyncio.ensure_future(client.replay(
                    **{**SPEC, "cache_size": (8 + i) * 1024}
                ))
                for i in range(4)
            ]
            done = await asyncio.gather(*tasks, return_exceptions=True)
            shed = [r for r in done if isinstance(r, Backpressure)]
            assert shed
            assert all(r.retry_after == 1.0 for r in shed)

        run_with_server(body, max_queue=1)

    def test_healthz_not_admission_controlled(self, monkeypatch):
        def slow_replay(spec_payload, handle):
            time.sleep(0.5)
            return {"short": 1, "data": 1, "by_cause_short": {},
                    "by_cause_data": {}}

        monkeypatch.setattr(worker, "run_replay", slow_replay)

        async def body(service, client):
            blocker = asyncio.ensure_future(client.replay(**SPEC))
            await asyncio.sleep(0.1)
            health = await client.healthz()  # not shed while queue full
            assert health["queue_depth"] == 1
            await blocker

        run_with_server(body, max_queue=1)


class TestDrain:
    def test_drain_completes_admitted_requests(self, monkeypatch):
        def slow_replay(spec_payload, handle):
            time.sleep(0.4)
            return {"short": 7, "data": 3, "by_cause_short": {},
                    "by_cause_data": {}}

        monkeypatch.setattr(worker, "run_replay", slow_replay)

        async def main():
            service = CoherenceService(ServiceConfig(port=0, jobs=1))
            await service.start()
            client = AsyncServiceClient("127.0.0.1", service.port)
            task = asyncio.ensure_future(client.replay(**SPEC))
            await asyncio.sleep(0.1)
            await service.drain()
            response = await task
            assert response["result"]["short"] == 7
            assert service.served == 1
            # Idempotent: a second drain is a no-op.
            await service.drain()

        asyncio.run(main())

    def test_draining_server_rejects_new_queries(self, monkeypatch):
        def slow_replay(spec_payload, handle):
            time.sleep(0.6)
            return {"short": 1, "data": 1, "by_cause_short": {},
                    "by_cause_data": {}}

        monkeypatch.setattr(worker, "run_replay", slow_replay)

        async def main():
            service = CoherenceService(ServiceConfig(port=0, jobs=1))
            await service.start()
            client = AsyncServiceClient("127.0.0.1", service.port)
            # Park a connection while the listener still accepts, and
            # hold the drain open with a slow in-flight replay.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            blocker = asyncio.ensure_future(client.replay(**SPEC))
            await asyncio.sleep(0.1)
            draining = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0.1)
            # New queries during the drain window are refused, not
            # queued behind work that will never be admitted.
            body = b'{"v": 1, "spec": {}}'
            writer.write(
                b"POST /v1/replay HTTP/1.1\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b"503" in raw.split(b"\r\n", 1)[0]
            # The admitted request still completes.
            response = await blocker
            assert response["result"]["short"] == 1
            await draining

        asyncio.run(main())
