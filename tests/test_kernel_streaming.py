"""The streaming kernel backend (:mod:`repro.kernels.streaming`).

Three contracts are pinned here:

* **Chunk-boundary equivalence** — feeding a trace in segments of any
  size (including segments that split a block's accesses arbitrarily)
  produces stats and final machine state identical to the batch kernel
  and to the legacy packed loop.  Integer delta merges are
  order-independent, so this must hold exactly, not approximately.
* **O(chunk) memory** — a replay fed from a segment generator never
  materialises the whole trace: peak allocation during the feed phase
  stays far below the packed trace's own byte size when accesses
  outnumber blocks (per-block walk state is the machine's own floor
  and is excluded from the claim).
* **Envelope honesty** — ineligible machines raise from the
  constructor without touching the machine, and the
  :func:`replay_stream` convenience converts that into a counted
  fallback onto ``machine.run`` with identical results.
"""

import tracemalloc
from array import array

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import ProtocolError
from repro.directory.policy import AGGRESSIVE, BASIC
from repro.kernels import registry
from repro.kernels.streaming import (
    BusStreamReplay,
    DirectoryStreamReplay,
    replay_stream,
    stream_replay_for,
)
from repro.kernels.tables import KernelUnsupported
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import AdaptiveSnoopingProtocol, MesiProtocol
from repro.system.machine import DirectoryMachine
from repro.system.placement import FirstTouchPlacement
from repro.trace import synth
from repro.trace.packed import PackedTrace

NUM_PROCS = 6

CHUNK_SIZES = (64, 997, 4096)


def _packed():
    trace = synth.interleave(
        [synth.migratory(num_procs=NUM_PROCS, num_objects=5, visits=10,
                         reads_per_visit=2, writes_per_visit=2, seed=21),
         synth.producer_consumer(num_procs=NUM_PROCS, num_objects=3,
                                 rounds=6, consumers=3, base=1 << 14,
                                 seed=22)],
        chunk=5, seed=23)
    return trace.pack()


def _config(num_procs=NUM_PROCS):
    return MachineConfig(
        num_procs=num_procs,
        cache=CacheConfig(size_bytes=None, block_size=16),
    )


def _lines(machine):
    out = []
    for proc, cache in enumerate(machine.caches):
        for block in sorted(cache.resident_blocks()):
            line = cache.lookup(block)
            out.append((proc, block, line.state, line.dirty, line.counter))
    return out


def _dir_state(machine):
    return {
        "stats": machine.stats,
        "by_cause_short": machine.stats.by_cause_short,
        "by_cause_data": machine.stats.by_cause_data,
        "cache_stats": machine.cache_stats,
        "invalidation_sizes": machine.invalidation_sizes,
        "transitions": machine.protocol.transitions,
        "entries": {
            block: (ent.state, tuple(sorted(ent.copyset)),
                    ent.last_invalidator, ent.streak)
            for block, ent in machine.protocol.entries.items()
        },
        "lines": _lines(machine),
    }


def _bus_state(machine):
    return {
        "bus_stats": machine.bus_stats,
        "by_kind": machine.bus_stats.by_kind,
        "cache_stats": machine.cache_stats,
        "lines": _lines(machine),
    }


class TestChunkBoundaryEquivalence:
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_directory_matches_packed_loop(self, chunk):
        packed = _packed()
        reference = DirectoryMachine(_config(), AGGRESSIVE)
        with registry.disabled():
            reference.run(packed)
        registry.engagements.clear()
        machine = DirectoryMachine(_config(), AGGRESSIVE)
        replay = DirectoryStreamReplay(machine)
        for segment in packed.segments(chunk):
            replay.feed(segment)
        stats = replay.finish()
        assert registry.engagements["directory-stream"] == 1
        assert stats is machine.stats
        assert _dir_state(machine) == _dir_state(reference)

    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_bus_matches_packed_loop(self, chunk):
        packed = _packed()
        reference = BusMachine(_config(), AdaptiveSnoopingProtocol())
        with registry.disabled():
            reference.run(packed)
        registry.engagements.clear()
        machine = BusMachine(_config(), AdaptiveSnoopingProtocol())
        replay = BusStreamReplay(machine)
        for segment in packed.segments(chunk):
            replay.feed(segment)
        stats = replay.finish()
        assert registry.engagements["bus-stream"] == 1
        assert stats is machine.bus_stats
        assert _bus_state(machine) == _bus_state(reference)

    def test_matches_batch_kernel(self):
        # Both kernel backends run the same compiled rows: whole-trace
        # batch replay and chunked streaming replay must agree exactly.
        packed = _packed()
        batch = DirectoryMachine(_config(), BASIC)
        batch.run(packed)
        machine = DirectoryMachine(_config(), BASIC)
        replay_stream(machine, packed, chunk=513)
        assert _dir_state(machine) == _dir_state(batch)

    def test_first_touch_homes_assigned_identically(self):
        packed = _packed()
        reference = DirectoryMachine(
            _config(), BASIC, placement=FirstTouchPlacement())
        with registry.disabled():
            reference.run(packed)
        machine = DirectoryMachine(
            _config(), BASIC, placement=FirstTouchPlacement())
        replay_stream(machine, packed, chunk=97)
        assert machine.placement._homes == reference.placement._homes
        assert _dir_state(machine) == _dir_state(reference)

    def test_wide_processor_count_streams(self):
        config = _config(num_procs=200)
        packed = _packed()
        reference = DirectoryMachine(config, BASIC)
        with registry.disabled():
            reference.run(packed)
        registry.engagements.clear()
        machine = DirectoryMachine(config, BASIC)
        replay_stream(machine, packed, chunk=301)
        assert registry.engagements["directory-stream"] == 1
        assert _dir_state(machine) == _dir_state(reference)


class TestMemoryEnvelope:
    def test_feed_phase_is_o_chunk_not_o_trace(self):
        # 600 blocks x ~170 accesses each, synthesized chunk by chunk
        # from a generator: the whole trace (17 bytes/access packed)
        # never exists in memory, and the feed-phase peak must stay
        # well under its byte size.
        num_blocks, total = 600, 100_000
        chunk = 10_000

        def segments():
            procs = array("q")
            ops = array("b")
            addrs = array("q")
            for i in range(total):
                procs.append((i * 7) % 4)
                ops.append(1 if i % 3 == 0 else 0)
                addrs.append((i % num_blocks) * 16)
                if len(procs) == chunk:
                    yield PackedTrace(procs, ops, addrs)
                    procs, ops, addrs = array("q"), array("b"), array("q")
            if procs:
                yield PackedTrace(procs, ops, addrs)

        machine = BusMachine(_config(num_procs=4), MesiProtocol())
        replay = BusStreamReplay(machine)
        tracemalloc.start()
        try:
            for segment in segments():
                replay.feed(segment)
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        replay.finish()
        trace_bytes = 17 * total
        assert peak < trace_bytes / 2, (peak, trace_bytes)
        # The replay really covered the whole synthetic trace.
        assert (machine.cache_stats.read_hits
                + machine.cache_stats.read_misses
                + machine.cache_stats.write_hits
                + machine.cache_stats.write_misses) == total


class TestEnvelope:
    def test_finite_cache_raises_without_touching_machine(self):
        config = MachineConfig(
            num_procs=4, cache=CacheConfig(size_bytes=64, block_size=16))
        machine = DirectoryMachine(config, BASIC)
        with pytest.raises(KernelUnsupported, match="finite-cache"):
            DirectoryStreamReplay(machine)
        assert machine.stats.short == 0 and not len(machine.caches[0])

    def test_not_fresh_machine_raises(self):
        machine = BusMachine(_config(), MesiProtocol())
        machine.run(_packed())
        with pytest.raises(KernelUnsupported, match="not-fresh"):
            BusStreamReplay(machine)

    def test_feed_after_finish_raises(self):
        machine = BusMachine(_config(), MesiProtocol())
        replay = BusStreamReplay(machine)
        replay.feed(_packed())
        replay.finish()
        with pytest.raises(ProtocolError):
            replay.feed(_packed())
        with pytest.raises(ProtocolError):
            replay.finish()

    def test_dispatch_picks_engine_by_machine(self):
        assert isinstance(
            stream_replay_for(DirectoryMachine(_config(), BASIC)),
            DirectoryStreamReplay)
        assert isinstance(
            stream_replay_for(BusMachine(_config(), MesiProtocol())),
            BusStreamReplay)

    def test_replay_stream_falls_back_identically(self):
        config = MachineConfig(
            num_procs=NUM_PROCS,
            cache=CacheConfig(size_bytes=64, block_size=16))
        packed = _packed()
        reference = DirectoryMachine(config, BASIC)
        with registry.disabled():
            reference.run(packed)
        registry.fallbacks.clear()
        machine = DirectoryMachine(config, BASIC)
        replay_stream(machine, packed)
        assert registry.fallbacks[("directory-stream", "finite-cache")] == 1
        assert _dir_state(machine) == _dir_state(reference)
