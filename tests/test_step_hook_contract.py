"""The symmetric ``step_hook`` contract on both machines.

A hook installed before ``run`` forces the generic per-access path (on
both machines) and observes every protocol-visible step while leaving
every statistic bit-identical to the packed replay.  A hook that
appears *mid-replay* on the packed path missed earlier steps, so the
replay must fail loudly instead of returning partial observations.
"""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import ProtocolError
from repro.common.types import Access, Op
from repro.directory.policy import BASIC
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import MesiProtocol
from repro.system.machine import DirectoryMachine
from repro.trace.core import Trace

NUM_PROCS = 4


def _trace() -> Trace:
    accesses = []
    for round_no in range(8):
        for proc in range(NUM_PROCS):
            accesses.append(Access(proc, Op.READ, 16 * proc))
            accesses.append(Access(proc, Op.WRITE, 16 * proc))
            accesses.append(Access(proc, Op.READ, 0))
            if round_no % 2:
                accesses.append(Access(proc, Op.WRITE, 0))
    return Trace(accesses, name="hook-contract")


def _config() -> MachineConfig:
    return MachineConfig(
        num_procs=NUM_PROCS,
        cache=CacheConfig(size_bytes=None, block_size=16),
    )


class TestHookForcesGenericPath:
    """With a hook, both machines take the per-access path, fire the
    hook on every protocol-visible step, and keep identical stats."""

    def test_directory(self):
        packed = DirectoryMachine(_config(), BASIC)
        packed.run(_trace())
        seen = []
        hooked = DirectoryMachine(
            _config(), BASIC,
            step_hook=lambda m, p, b: seen.append((p, b)),
        )
        hooked.run(_trace())
        stats = hooked.cache_stats
        assert len(seen) == (stats.read_misses + stats.write_misses
                             + stats.upgrades)
        assert hooked.cache_stats == packed.cache_stats
        assert hooked.stats.short == packed.stats.short
        assert hooked.stats.data == packed.stats.data

    def test_bus(self):
        packed = BusMachine(_config(), MesiProtocol())
        packed.run(_trace())
        seen = []
        hooked = BusMachine(
            _config(), MesiProtocol(),
            step_hook=lambda m, p, b: seen.append((p, b)),
        )
        hooked.run(_trace())
        stats = hooked.cache_stats
        # The bus hook additionally fires on bus-silent write hits.
        assert len(seen) >= (stats.read_misses + stats.write_misses
                             + stats.upgrades)
        assert hooked.cache_stats == packed.cache_stats
        assert hooked.bus_stats.by_kind == packed.bus_stats.by_kind


class _HookInstallingPlacement:
    """Placement that sneaks a hook onto the machine during a replay."""

    def __init__(self):
        self.machine = None

    def home(self, page: int, accessor: int) -> int:
        if self.machine.step_hook is None:
            self.machine.step_hook = lambda m, p, b: None
        return 0


class _HookInstallingProtocol(MesiProtocol):
    """Snooping protocol that installs a hook from a miss handler."""

    def __init__(self):
        self.machine = None

    def read_miss_fill(self, caches, proc, block):
        if self.machine.step_hook is None:
            self.machine.step_hook = lambda m, p, b: None
        return super().read_miss_fill(caches, proc, block)


class TestMidReplayInstallRejected:
    def test_directory_packed_path_raises(self):
        placement = _HookInstallingPlacement()
        machine = DirectoryMachine(_config(), BASIC, placement=placement)
        placement.machine = machine
        with pytest.raises(ProtocolError, match="mid-replay"):
            machine.run(_trace())

    def test_bus_packed_path_raises(self):
        protocol = _HookInstallingProtocol()
        machine = BusMachine(_config(), protocol)
        protocol.machine = machine
        with pytest.raises(ProtocolError, match="mid-replay"):
            machine.run(_trace())

    def test_generic_path_tolerates_mid_replay_install(self):
        # On the per-access path there is no packed fast-path contract
        # to violate: iterating plain accesses never consults pack().
        placement = _HookInstallingPlacement()
        machine = DirectoryMachine(_config(), BASIC, placement=placement)
        placement.machine = machine
        machine.run(iter(_trace()))
        assert machine.step_hook is not None
