"""Unit tests for the Table 1 message-cost model."""

import pytest

from repro.interconnect.costs import (
    Charge,
    OpClass,
    TABLE1_ROWS,
    eviction_charge,
    render_table1,
    table1_charge,
)


class TestCharge:
    def test_add(self):
        assert Charge(1, 2) + Charge(3, 4) == Charge(4, 6)

    def test_total(self):
        assert Charge(2, 3).total == 5


class TestTable1:
    """Each case mirrors one row of Table 1 in the paper."""

    @pytest.mark.parametrize("dc", [0, 1, 3])
    def test_read_miss_local_clean(self, dc):
        assert table1_charge(OpClass.READ_MISS, True, False, dc) == Charge(0, 0)

    def test_read_miss_local_dirty(self):
        assert table1_charge(OpClass.READ_MISS, True, True, 1) == Charge(1, 1)

    def test_read_miss_remote_clean(self):
        assert table1_charge(OpClass.READ_MISS, False, False, 0) == Charge(1, 1)

    @pytest.mark.parametrize("dc", [0, 1])
    def test_read_miss_remote_dirty(self, dc):
        assert table1_charge(OpClass.READ_MISS, False, True, dc) == Charge(
            1 + dc, 1 + dc
        )

    @pytest.mark.parametrize("dc", [0, 2, 5])
    def test_write_miss_local_clean(self, dc):
        assert table1_charge(OpClass.WRITE_MISS, True, False, dc) == Charge(
            2 * dc, 0
        )

    def test_write_miss_local_dirty(self):
        assert table1_charge(OpClass.WRITE_MISS, True, True, 1) == Charge(1, 1)

    @pytest.mark.parametrize("dc", [0, 3])
    def test_write_miss_remote_clean(self, dc):
        assert table1_charge(OpClass.WRITE_MISS, False, False, dc) == Charge(
            1 + 2 * dc, 1
        )

    @pytest.mark.parametrize("dc", [0, 1])
    def test_write_miss_remote_dirty(self, dc):
        assert table1_charge(OpClass.WRITE_MISS, False, True, dc) == Charge(
            1 + dc, 1 + dc
        )

    @pytest.mark.parametrize("dc", [0, 4])
    def test_write_hit_local_clean(self, dc):
        assert table1_charge(OpClass.WRITE_HIT, True, False, dc) == Charge(2 * dc, 0)

    @pytest.mark.parametrize("dc", [0, 4])
    def test_write_hit_remote_clean(self, dc):
        assert table1_charge(OpClass.WRITE_HIT, False, False, dc) == Charge(
            2 + 2 * dc, 0
        )

    def test_write_hit_dirty_undefined(self):
        with pytest.raises(ValueError):
            table1_charge(OpClass.WRITE_HIT, True, True, 0)

    def test_negative_dc_rejected(self):
        with pytest.raises(ValueError):
            table1_charge(OpClass.READ_MISS, True, False, -1)

    def test_rows_constant_matches_function(self):
        """The declarative TABLE1_ROWS must agree with table1_charge."""
        for op, home, status, short_f, data_f in TABLE1_ROWS:
            for n in (0, 1, 2):
                env = {"n": n}
                expected_short = eval(short_f.replace("2n", "2*n"), env)  # noqa: S307
                expected_data = eval(data_f.replace("2n", "2*n"), env)  # noqa: S307
                got = table1_charge(op, home == "local", status == "dirty", n)
                assert got == Charge(expected_short, expected_data), (
                    op, home, status, n,
                )


class TestEvictionCharge:
    def test_local_free(self):
        assert eviction_charge(True, True) == Charge(0, 0)
        assert eviction_charge(False, True) == Charge(0, 0)

    def test_remote_dirty_writeback(self):
        assert eviction_charge(True, False) == Charge(0, 1)

    def test_remote_clean_notification(self):
        assert eviction_charge(False, False) == Charge(1, 0)

    def test_silent_clean_ablation(self):
        assert eviction_charge(False, False, notify_clean=False) == Charge(0, 0)


def test_render_table1_mentions_every_row():
    text = render_table1()
    assert "read miss" in text and "write hit" in text
    assert "2 + 2n" in text
    assert len(text.splitlines()) == 2 + len(TABLE1_ROWS)
