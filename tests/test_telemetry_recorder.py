"""Machine recorders: event streams reproduce the machines' own story.

The acceptance property of the telemetry subsystem: replaying a trace
with a recorder attached (a) leaves every statistic bit-identical to a
bare run, and (b) produces an event log from which the run's migratory
classification — transition counts and the final migratory block set —
can be reconstructed exactly, matching the machine-side aggregates.
"""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import TelemetryError
from repro.common.types import Access, Op
from repro.directory.policy import AGGRESSIVE, BASIC, CONSERVATIVE
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import AdaptiveSnoopingProtocol
from repro.system.machine import DirectoryMachine
from repro.telemetry import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    attach_recorder,
    build_timelines,
    classification_counts,
    migratory_blocks,
    validate_records,
)
from repro.telemetry.cli import main as stats_main
from repro.telemetry.events import COHERENCE_KINDS
from repro.telemetry.recorder import (
    COHERENCE_TOTAL,
    STEPS_TOTAL,
    TRANSITIONS_TOTAL,
)
from repro.telemetry.sinks import read_jsonl
from repro.trace.core import Trace
from repro.workloads.profiles import build_app

NUM_PROCS = 8


@pytest.fixture(scope="module")
def trace():
    return build_app("water", num_procs=NUM_PROCS, seed=1, scale=0.03)


def _config(cache_size=4096):
    return MachineConfig(
        num_procs=NUM_PROCS,
        cache=CacheConfig(size_bytes=cache_size, block_size=16),
    )


def _machine_transitions(machine) -> dict:
    return {
        t: machine.protocol.transitions.get(t, 0)
        for t in ("promote", "demote", "evidence")
    }


def _event_transitions(records, engine) -> dict:
    counts = classification_counts(records)
    return {
        t: counts.get((engine, t), 0)
        for t in ("promote", "demote", "evidence")
    }


class TestAcceptance:
    """The ISSUE's acceptance property, end to end through a JSONL log."""

    @pytest.mark.parametrize("policy", [BASIC, CONSERVATIVE, AGGRESSIVE],
                             ids=lambda p: p.name)
    def test_events_reproduce_machine_classification(
        self, trace, tmp_path, policy
    ):
        machine = DirectoryMachine(_config(), policy)
        log = tmp_path / "events.jsonl"
        with JsonlSink(log) as sink:
            recorder = attach_recorder(machine, sink=sink)
            machine.run(trace)
        records = list(read_jsonl(log))
        validate_records(records)

        # Transition counts from events alone == the protocol's own
        # aggregate counters.
        assert (_event_transitions(records, recorder.engine)
                == _machine_transitions(machine))

        # The final migratory block set, rebuilt from the log, matches
        # the directory's end-of-run state for every block that ever
        # produced a classification event.  Under a remembering policy
        # whose initial classification is non-migratory, that is the
        # complete migratory set.
        rebuilt = migratory_blocks(build_timelines(records), recorder.engine)
        actual = {
            block for block, ent in machine.protocol.entries.items()
            if ent.migratory
        }
        if policy.initial_migratory:
            # Blocks that started migratory and never transitioned have
            # no classification events; events still pin down every
            # block that ever changed.
            seen = {r["block"] for r in records
                    if r["type"] == "classification"}
            assert rebuilt == {b for b in actual if b in seen}
        else:
            assert rebuilt == actual
        assert recorder.migratory_blocks == actual

    def test_repro_stats_renders_timeline_from_log(
        self, trace, tmp_path, capsys
    ):
        machine = DirectoryMachine(_config(), BASIC)
        log = tmp_path / "events.jsonl"
        with JsonlSink(log) as sink:
            attach_recorder(machine, sink=sink)
            machine.run(trace)
        assert stats_main(["timeline", str(log), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "migratory from step" in out


class TestStatisticsUntouched:
    def test_directory_stats_identical_with_recorder(self, trace):
        bare = DirectoryMachine(_config(), BASIC)
        bare.run(trace)
        observed = DirectoryMachine(_config(), BASIC)
        attach_recorder(observed, sink=MemorySink())
        observed.run(trace)
        assert bare.stats.short == observed.stats.short
        assert bare.stats.data == observed.stats.data
        assert bare.stats.by_cause_short == observed.stats.by_cause_short
        assert bare.cache_stats == observed.cache_stats

    def test_bus_stats_identical_with_recorder(self, trace):
        bare = BusMachine(_config(), AdaptiveSnoopingProtocol())
        bare.run(trace)
        observed = BusMachine(_config(), AdaptiveSnoopingProtocol())
        attach_recorder(observed, sink=MemorySink())
        observed.run(trace)
        assert bare.bus_stats.by_kind == observed.bus_stats.by_kind
        assert bare.cache_stats == observed.cache_stats


class TestRecorderStream:
    def test_coherence_kinds_and_metrics(self, trace):
        machine = DirectoryMachine(_config(), BASIC)
        registry = MetricsRegistry()
        recorder = attach_recorder(machine, registry=registry,
                                   sink=MemorySink())
        machine.run(trace)
        coherence = [r for r in recorder.records if r["type"] == "coherence"]
        assert coherence, "expected coherence events"
        assert {r["kind"] for r in coherence} <= set(COHERENCE_KINDS)
        assert recorder.steps == len(coherence)
        steps_metric = registry.counter(STEPS_TOTAL)
        assert steps_metric.value(
            engine=recorder.engine, repro_protocol_family=recorder.family
        ) == recorder.steps
        per_kind = registry.counter(COHERENCE_TOTAL)
        for kind in COHERENCE_KINDS:
            assert per_kind.value(
                engine=recorder.engine, kind=kind,
                repro_protocol_family=recorder.family,
            ) == sum(
                1 for r in coherence if r["kind"] == kind
            )
        transitions = registry.counter(TRANSITIONS_TOTAL)
        assert (transitions.value(engine=recorder.engine, direction="promote",
                                  repro_protocol_family=recorder.family)
                == _machine_transitions(machine)["promote"])

    def test_bus_recorder_sees_adaptive_classification(self, trace):
        machine = BusMachine(_config(), AdaptiveSnoopingProtocol())
        recorder = attach_recorder(machine, sink=MemorySink())
        machine.run(trace)
        validate_records(recorder.records)
        assert recorder.engine == "bus[adaptive]"
        promotes = [r for r in recorder.records
                    if r["type"] == "classification"
                    and r["transition"] == "promote"]
        assert promotes, "adaptive snooping should classify migratory blocks"
        assert all(r["to"] == "migratory" for r in promotes)

    def test_bus_silent_write_hits_emit_no_events(self):
        # Two processors read (shared copies), then one writes the
        # block repeatedly: the first write upgrades on the bus, every
        # later write is bus-silent and must not produce events.
        accesses = [Access(1, Op.READ, 0), Access(0, Op.READ, 0)] + [
            Access(0, Op.WRITE, 0) for _ in range(5)
        ]
        machine = BusMachine(_config(None), AdaptiveSnoopingProtocol())
        recorder = attach_recorder(machine, sink=MemorySink())
        machine.run(Trace(accesses, name="silent"))
        kinds = [r["kind"] for r in recorder.records
                 if r["type"] == "coherence"]
        assert kinds == ["read_miss", "read_miss", "upgrade"]

    def test_demotion_observed(self):
        # Migrate block 0 between four processors, then read-share it:
        # the read miss to a clean migratory block demotes it.
        accesses = []
        for _ in range(3):
            for proc in range(4):
                accesses.append(Access(proc, Op.READ, 0))
                accesses.append(Access(proc, Op.WRITE, 0))
        accesses += [Access(proc, Op.READ, 0) for proc in range(4)]
        config = MachineConfig(
            num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
        )
        machine = DirectoryMachine(config, BASIC)
        recorder = attach_recorder(machine, sink=MemorySink())
        machine.run(Trace(accesses, name="migrate-then-share"))
        assert (_event_transitions(recorder.records, recorder.engine)
                == _machine_transitions(machine))
        assert _machine_transitions(machine)["demote"] >= 1
        (timeline,) = build_timelines(recorder.records).values()
        assert timeline.promotions and timeline.demotions
        assert not timeline.final_migratory


class TestAttachErrors:
    def test_occupied_hook_rejected(self, trace):
        machine = DirectoryMachine(_config(), BASIC,
                                   step_hook=lambda m, p, b: None)
        with pytest.raises(TelemetryError, match="already has a step_hook"):
            attach_recorder(machine)

    def test_unknown_machine_rejected(self):
        with pytest.raises(TelemetryError, match="cannot attach"):
            attach_recorder(object())

    def test_records_require_memory_sink(self, tmp_path):
        machine = DirectoryMachine(_config(), BASIC)
        with JsonlSink(tmp_path / "e.jsonl") as sink:
            recorder = attach_recorder(machine, sink=sink)
            with pytest.raises(TelemetryError, match="MemorySink"):
                recorder.records
