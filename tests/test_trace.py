"""Unit tests for trace containers and synthetic generators."""

import pytest

from repro.common.errors import TraceError
from repro.common.types import Op, read, write
from repro.trace import synth
from repro.trace.core import Trace


class TestTrace:
    def test_append_extend_len(self):
        t = Trace()
        t.append(read(0, 0))
        t.extend([write(1, 4), read(2, 8)])
        assert len(t) == 3
        assert t[1] == write(1, 4)

    def test_num_procs(self):
        assert Trace([read(0, 0), read(5, 4)]).num_procs == 6
        assert Trace().num_procs == 0

    def test_write_fraction(self):
        t = Trace([read(0, 0), write(0, 0), write(0, 4), read(0, 8)])
        assert t.write_fraction == pytest.approx(0.5)
        assert Trace().write_fraction == 0.0

    def test_footprint(self):
        t = Trace([read(0, 0), read(0, 2), read(0, 4)])
        assert t.footprint_bytes(granularity=4) == 8

    def test_blocks(self):
        t = Trace([read(0, 0), read(0, 15), read(0, 16)])
        assert t.blocks(16) == {0, 1}

    def test_save_load_roundtrip(self, tmp_path):
        t = Trace([read(3, 0x1234), write(0, 0)], name="rt")
        path = tmp_path / "t.trace"
        t.save(path)
        loaded = Trace.load(path)
        assert list(loaded) == list(t)
        assert loaded.name == "t"

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("0 R 10\nnot a record\n")
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_load_rejects_bad_op(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("0 X 10\n")
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_load_skips_comments(self, tmp_path):
        path = tmp_path / "c.trace"
        path.write_text("# hello\n\n1 W ff\n")
        t = Trace.load(path)
        assert list(t) == [write(1, 0xFF)]

    def test_gzip_roundtrip(self, tmp_path):
        t = Trace([read(3, 0x1234), write(0, 0)] * 50, name="gz")
        path = tmp_path / "t.trace.gz"
        t.save(path)
        # really compressed: gzip magic bytes
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert list(Trace.load(path)) == list(t)

    def test_gzip_smaller_than_plain(self, tmp_path):
        t = Trace([read(1, i * 4) for i in range(5000)])
        plain = tmp_path / "t.trace"
        packed = tmp_path / "t.trace.gz"
        t.save(plain)
        t.save(packed)
        assert packed.stat().st_size < plain.stat().st_size / 2


class TestMigratoryGenerator:
    def test_deterministic(self):
        a = synth.migratory(seed=42)
        b = synth.migratory(seed=42)
        assert list(a) == list(b)
        c = synth.migratory(seed=43)
        assert list(a) != list(c)

    def test_no_immediate_repeat_visits(self):
        t = synth.migratory(num_procs=8, num_objects=1, visits=50,
                            reads_per_visit=1, writes_per_visit=1, seed=0)
        visit_procs = [a.proc for a in t if a.op is Op.WRITE]
        for prev, cur in zip(visit_procs, visit_procs[1:]):
            assert prev != cur

    def test_each_visit_reads_then_writes(self):
        t = synth.migratory(num_procs=4, num_objects=1, visits=3,
                            reads_per_visit=2, writes_per_visit=1, seed=0)
        ops = [a.op for a in t]
        assert ops == [Op.READ, Op.READ, Op.WRITE] * 3

    def test_objects_disjoint(self):
        t = synth.migratory(num_objects=4, words_per_object=2, stride=64, seed=0)
        addrs_by_obj = {}
        for a in t:
            addrs_by_obj.setdefault(a.addr // 64, set()).add(a.addr)
        assert len(addrs_by_obj) == 4


class TestReadSharedGenerator:
    def test_single_writer(self):
        t = synth.read_shared(num_procs=8, writer=2, seed=0)
        writers = {a.proc for a in t if a.op is Op.WRITE}
        assert writers == {2}

    def test_all_procs_read(self):
        t = synth.read_shared(num_procs=8, rounds=2, seed=0)
        readers = {a.proc for a in t if a.op is Op.READ}
        assert readers == set(range(8))


class TestProducerConsumer:
    def test_roles_fixed(self):
        t = synth.producer_consumer(num_procs=4, num_objects=1, rounds=5,
                                    consumers=2, seed=1)
        writers = {a.proc for a in t if a.op is Op.WRITE}
        readers = {a.proc for a in t if a.op is Op.READ}
        assert len(writers) == 1
        assert writers.isdisjoint(readers)


class TestFalseSharing:
    def test_distinct_words_same_block(self):
        t = synth.false_sharing(num_procs=4, num_blocks=1, block_size=64,
                                rounds=1, seed=2)
        blocks = {a.addr // 64 for a in t}
        assert blocks == {0}
        # different processors touch different words
        proc_words = {}
        for a in t:
            proc_words.setdefault(a.proc, set()).add(a.addr)
        words = [frozenset(v) for v in proc_words.values()]
        assert len(set(words)) == len(words)


class TestPrivate:
    def test_regions_disjoint_per_proc(self):
        t = synth.private(num_procs=4, seed=3)
        regions = {}
        for a in t:
            regions.setdefault(a.proc, set()).add(a.addr // 4096)
        all_pages = [p for pages in regions.values() for p in pages]
        assert len(all_pages) == len(set(all_pages))


class TestInterleave:
    def test_preserves_per_trace_order(self):
        t1 = Trace([read(0, i * 4) for i in range(20)])
        t2 = Trace([write(1, 4096 + i * 4) for i in range(20)])
        mixed = synth.interleave([t1, t2], chunk=3, seed=4)
        assert len(mixed) == 40
        sub1 = [a for a in mixed if a.proc == 0]
        sub2 = [a for a in mixed if a.proc == 1]
        assert sub1 == list(t1)
        assert sub2 == list(t2)

    def test_actually_interleaves(self):
        t1 = Trace([read(0, 0)] * 10)
        t2 = Trace([read(1, 4096)] * 10)
        mixed = synth.interleave([t1, t2], chunk=2, seed=5)
        procs = [a.proc for a in mixed]
        # not all of t1 then all of t2
        assert procs != sorted(procs)
