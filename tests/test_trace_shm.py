"""Tests for the shared-memory trace arena and its lifecycle guarantees."""

import pytest
from multiprocessing import shared_memory

from repro.directory.policy import BASIC
from repro.experiments import common
from repro.parallel import parallel_map
from repro.system.machine import DirectoryMachine
from repro.trace import shm, synth


@pytest.fixture(autouse=True)
def _fresh_arena():
    """Each test starts (and leaves) with no published or attached state."""
    shm._reset_for_tests()
    yield
    shm._reset_for_tests()


def _trace():
    return synth.interleave(
        [synth.migratory(num_procs=4, num_objects=4, visits=6, seed=1),
         synth.read_shared(num_procs=4, num_objects=4, rounds=3,
                           base=1 << 20, seed=2)],
        chunk=4, seed=3)


def _replay(trace):
    """Directly replay one trace (no result cache in the way)."""
    config = common.directory_config(16 * 1024, num_procs=4)
    machine = DirectoryMachine(
        config, BASIC, common.get_placement("round_robin", trace, config)
    )
    machine.run(trace)
    return (machine.stats.short, machine.stats.data,
            dict(machine.stats.by_cause_short))


def _attached_replay(handle):
    """Worker body: attach to a published segment and replay it."""
    trace = shm.attach(handle)
    return _replay(trace)


class TestRoundTrip:
    def test_attach_reproduces_columns_and_digest(self):
        trace = _trace()
        packed = trace.pack()
        with shm.TraceArena() as arena:
            handle = arena.publish(("k",), packed)
            assert handle is not None
            assert handle.length == len(packed)
            attached = shm.attach(handle)
            back = attached.pack()
            assert list(back.procs) == list(packed.procs)
            assert list(back.ops) == list(packed.ops)
            assert list(back.addrs) == list(packed.addrs)
            assert back.digest() == packed.digest()
            assert back.name == packed.name

    def test_attached_trace_replays_identically(self):
        trace = _trace()
        expected = _replay(trace)
        with shm.TraceArena() as arena:
            handle = arena.publish(("k",), trace.pack())
            assert _attached_replay(handle) == expected

    def test_publish_is_idempotent_per_key(self):
        trace = _trace()
        with shm.TraceArena() as arena:
            first = arena.publish(("k",), trace.pack())
            second = arena.publish(("k",), trace.pack())
            assert second is first
            assert len(arena) == 1

    def test_double_attach_from_two_workers(self, monkeypatch):
        """Two worker processes attach the same segment and agree."""
        monkeypatch.setenv("REPRO_PARALLEL_CLAMP", "off")
        trace = _trace()
        expected = _replay(trace)
        with shm.TraceArena() as arena:
            handle = arena.publish(("k",), trace.pack())
            assert handle is not None
            results = parallel_map(_attached_replay, [handle, handle], jobs=2)
        assert results == [expected, expected]


class TestLifecycle:
    def test_segment_unlinked_after_close(self):
        trace = _trace()
        arena = shm.TraceArena()
        handle = arena.publish(("k",), trace.pack())
        arena.close()
        with pytest.raises(OSError):
            shared_memory.SharedMemory(name=handle.segment, create=False)
        with pytest.raises((OSError, ValueError)):
            shm.attach(handle)

    def test_close_is_idempotent(self):
        arena = shm.TraceArena()
        arena.publish(("k",), _trace().pack())
        arena.close()
        arena.close()
        assert len(arena) == 0

    def test_unlink_survives_worker_crash(self, monkeypatch):
        """A dying sweep never leaks its segments: the parent owns them."""
        monkeypatch.setenv("REPRO_PARALLEL_CLAMP", "off")
        arena = shm.TraceArena()
        handle = arena.publish(("k",), _trace().pack())
        with pytest.raises(RuntimeError):
            parallel_map(_explode_worker, [0, 3], jobs=2)
        arena.close()
        with pytest.raises(OSError):
            shared_memory.SharedMemory(name=handle.segment, create=False)

    def test_default_arena_reset_unlinks(self):
        handles = common.publish_traces(("mp3d",), seed=0, scale=0.05)
        handle = handles["mp3d"]
        assert handle is not None
        assert len(shm.default_arena()) == 1
        shm._reset_for_tests()
        with pytest.raises(OSError):
            shared_memory.SharedMemory(name=handle.segment, create=False)


class TestFallback:
    def test_publish_failure_returns_none(self, monkeypatch):
        def boom(*args, **kwargs):
            raise OSError("no shared memory here")

        monkeypatch.setattr(shm.shared_memory, "SharedMemory", boom)
        arena = shm.TraceArena()
        assert arena.publish(("k",), _trace().pack()) is None
        assert len(arena) == 0

    def test_get_trace_falls_back_when_segment_gone(self):
        arena = shm.TraceArena()
        trace = common.get_trace("mp3d", seed=0, scale=0.05)
        handle = arena.publish(("gone",), trace.pack())
        arena.close()
        common.clear_caches()
        rebuilt = common.get_trace("mp3d", seed=0, scale=0.05, handle=handle)
        assert rebuilt.pack().digest() == trace.pack().digest()

    def test_attach_rejects_undersized_segment(self):
        seg = shared_memory.SharedMemory(create=True, size=8)
        try:
            bogus = shm.TraceHandle(seg.name, 1024, "bogus")
            with pytest.raises(ValueError):
                shm.attach(bogus)
        finally:
            seg.close()
            seg.unlink()


class TestSilentFallbackSweep:
    """Shared-memory publication is an optimisation, never a dependency:
    when segment creation fails (containers with a tiny /dev/shm, locked
    -down platforms), sweeps silently fall back to per-worker trace
    rebuilds and must produce byte-identical reports."""

    KWARGS = dict(apps=("mp3d",), cache_sizes=(16 * 1024,), scale=0.05)

    def test_parallel_sweep_identical_without_shared_memory(
            self, monkeypatch):
        from repro.experiments import table2

        monkeypatch.setenv("REPRO_PARALLEL_CLAMP", "off")
        # Disable the result cache for both runs: a cache hit would
        # skip the replays and the fallback path would go untested.
        monkeypatch.setenv("REPRO_RESULT_CACHE", "off")

        baseline = table2.run(jobs=2, **self.KWARGS)
        rendered_baseline = table2.render(baseline)

        common.clear_caches()

        def boom(*args, **kwargs):
            raise OSError("shared memory unavailable")

        monkeypatch.setattr(shm.shared_memory, "SharedMemory", boom)
        degraded = table2.run(jobs=2, **self.KWARGS)

        assert degraded == baseline
        for base_row, fallback_row in zip(baseline, degraded):
            assert base_row.cells == fallback_row.cells
        assert table2.render(degraded) == rendered_baseline

    def test_publish_traces_degrades_to_none(self, monkeypatch):
        def boom(*args, **kwargs):
            raise OSError("shared memory unavailable")

        monkeypatch.setattr(shm.shared_memory, "SharedMemory", boom)
        handles = common.publish_traces(("mp3d",), seed=0, scale=0.05)
        assert handles == {"mp3d": None}


def _explode_worker(x):
    if x == 3:
        raise RuntimeError("worker exploded")
    return x
