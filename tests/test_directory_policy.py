"""Unit tests for the adaptive policy family."""

import pytest

from repro.common.errors import ConfigError
from repro.directory.policy import (
    AGGRESSIVE,
    BASIC,
    CONSERVATIVE,
    CONVENTIONAL,
    PAPER_POLICIES,
    AdaptivePolicy,
    policy_by_name,
)


class TestNamedPolicies:
    def test_conventional_never_adapts(self):
        assert CONVENTIONAL.migratory_threshold is None
        assert not CONVENTIONAL.adaptive
        assert not CONVENTIONAL.initial_migratory

    def test_conservative_needs_two_events(self):
        assert CONSERVATIVE.migratory_threshold == 2
        assert not CONSERVATIVE.initial_migratory

    def test_basic_single_event(self):
        assert BASIC.migratory_threshold == 1
        assert not BASIC.initial_migratory

    def test_aggressive_initially_migratory(self):
        assert AGGRESSIVE.migratory_threshold == 1
        assert AGGRESSIVE.initial_migratory

    def test_paper_order(self):
        assert [p.name for p in PAPER_POLICIES] == [
            "conventional",
            "conservative",
            "basic",
            "aggressive",
        ]

    def test_all_paper_policies_remember_uncached(self):
        for policy in PAPER_POLICIES:
            assert policy.remember_uncached


class TestPolicyValidation:
    def test_zero_threshold_rejected(self):
        with pytest.raises(ConfigError):
            AdaptivePolicy("bad", migratory_threshold=0)

    def test_non_adaptive_initial_migratory_rejected(self):
        with pytest.raises(ConfigError):
            AdaptivePolicy("bad", migratory_threshold=None, initial_migratory=True)

    def test_custom_hysteresis_allowed(self):
        policy = AdaptivePolicy("deep", migratory_threshold=3)
        assert policy.adaptive

    def test_frozen(self):
        with pytest.raises(AttributeError):
            BASIC.migratory_threshold = 5


class TestLookup:
    def test_by_name(self):
        assert policy_by_name("basic") is BASIC
        assert policy_by_name("aggressive") is AGGRESSIVE

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            policy_by_name("turbo")
