"""Unit tests for the workload execution engine."""

import pytest

from repro.common.errors import DeadlockError, WorkloadError
from repro.common.types import Op
from repro.workloads.engine import (
    Acquire,
    BarrierWait,
    Engine,
    Heap,
    ReadEffect,
    Release,
    WriteEffect,
    run_program,
)


class TestHeap:
    def test_bump_allocation(self):
        h = Heap()
        a = h.alloc(16)
        b = h.alloc(16)
        assert b == a + 16
        assert h.used == 32

    def test_alignment(self):
        h = Heap()
        h.alloc(3)
        b = h.alloc(4, align=8)
        assert b % 8 == 0

    def test_alloc_words(self):
        h = Heap()
        assert h.alloc_words(4) == 0
        assert h.used == 16

    def test_base_offset(self):
        assert Heap(base=4096).alloc(4) == 4096

    def test_rejects_bad_sizes(self):
        with pytest.raises(WorkloadError):
            Heap().alloc(0)
        with pytest.raises(WorkloadError):
            Heap().alloc(4, align=3)


class TestEngineBasics:
    def test_single_thread_trace(self):
        def prog():
            yield ReadEffect(0)
            yield WriteEffect(4)
            yield ReadEffect(8)

        engine = Engine(1)
        engine.spawn(0, prog())
        trace = engine.run()
        assert [(a.proc, a.op, a.addr) for a in trace] == [
            (0, Op.READ, 0),
            (0, Op.WRITE, 4),
            (0, Op.READ, 8),
        ]

    def test_program_order_preserved_per_proc(self):
        def prog(proc):
            for i in range(50):
                yield ReadEffect(proc * 1024 + i * 4)

        trace = run_program(4, lambda p: prog(p), seed=3)
        for proc in range(4):
            addrs = [a.addr for a in trace if a.proc == proc]
            assert addrs == [proc * 1024 + i * 4 for i in range(50)]

    def test_interleaving_deterministic(self):
        def prog(proc):
            for i in range(20):
                yield WriteEffect(proc * 64 + i * 4)

        t1 = run_program(4, prog, seed=9)
        t2 = run_program(4, prog, seed=9)
        assert list(t1) == list(t2)
        t3 = run_program(4, prog, seed=10)
        assert list(t3) != list(t1)

    def test_threads_actually_interleave(self):
        def prog(proc):
            for i in range(50):
                yield ReadEffect(proc * 1024)

        trace = run_program(2, prog, seed=1)
        procs = [a.proc for a in trace]
        assert procs != sorted(procs)

    def test_invalid_proc_rejected(self):
        engine = Engine(2)
        with pytest.raises(WorkloadError):
            engine.spawn(5, iter([]))

    def test_bad_engine_params(self):
        with pytest.raises(WorkloadError):
            Engine(0)
        with pytest.raises(WorkloadError):
            Engine(2, max_quantum=0)


class TestLocks:
    def test_mutual_exclusion_serialises_critical_sections(self):
        """Accesses inside one lock's critical sections never interleave."""
        events = []

        def prog(proc):
            for _ in range(10):
                yield Acquire("L")
                events.append(("enter", proc))
                yield ReadEffect(0)
                yield WriteEffect(0)
                events.append(("exit", proc))
                yield Release("L")

        run_program(4, prog, seed=2, max_quantum=1)
        depth = 0
        for kind, _proc in events:
            depth += 1 if kind == "enter" else -1
            assert 0 <= depth <= 1

    def test_double_acquire_rejected(self):
        def prog():
            yield Acquire("L")
            yield Acquire("L")

        engine = Engine(1)
        engine.spawn(0, prog())
        with pytest.raises(WorkloadError):
            engine.run()

    def test_release_unheld_rejected(self):
        def prog():
            yield Release("L")

        engine = Engine(1)
        engine.spawn(0, prog())
        with pytest.raises(WorkloadError):
            engine.run()

    def test_exit_holding_lock_rejected(self):
        def prog():
            yield Acquire("L")

        engine = Engine(1)
        engine.spawn(0, prog())
        with pytest.raises(WorkloadError):
            engine.run()

    def test_lock_deadlock_detected(self):
        def prog_a():
            yield Acquire("A")
            yield Acquire("B")
            yield Release("B")
            yield Release("A")

        def prog_b():
            yield Acquire("B")
            yield Acquire("A")
            yield Release("A")
            yield Release("B")

        # Force the interleaving that deadlocks: quantum of 1 and many
        # seeds; at least one seed must interleave the first acquires.
        saw_deadlock = False
        for seed in range(20):
            engine = Engine(2, seed=seed, max_quantum=1)
            engine.spawn(0, prog_a())
            engine.spawn(1, prog_b())
            try:
                engine.run()
            except DeadlockError:
                saw_deadlock = True
                break
        assert saw_deadlock

    def test_sync_accesses_not_traced(self):
        def prog():
            yield Acquire("L")
            yield ReadEffect(0)
            yield Release("L")

        engine = Engine(1)
        engine.spawn(0, prog())
        trace = engine.run()
        assert len(trace) == 1  # only the data access


class TestBarriers:
    def test_barrier_synchronises(self):
        order = []

        def prog(proc):
            order.append(("before", proc))
            yield BarrierWait("b")
            order.append(("after", proc))
            yield ReadEffect(proc * 4)

        run_program(4, prog, seed=5)
        befores = [i for i, (k, _) in enumerate(order) if k == "before"]
        afters = [i for i, (k, _) in enumerate(order) if k == "after"]
        assert max(befores) < min(afters)

    def test_barrier_sequence(self):
        phase_of_access = {}

        def prog(proc):
            yield WriteEffect(proc * 4)
            yield BarrierWait("phase1")
            yield WriteEffect(1024 + proc * 4)
            yield BarrierWait("phase2")
            yield WriteEffect(2048 + proc * 4)

        trace = run_program(3, prog, seed=6)
        regions = [a.addr // 1024 for a in trace]
        assert regions == sorted(regions)

    def test_finished_threads_do_not_block_barrier(self):
        def short(proc):
            yield ReadEffect(proc * 4)

        def long(proc):
            yield ReadEffect(proc * 4)
            yield BarrierWait("b")
            yield ReadEffect(1024 + proc * 4)

        engine = Engine(3, seed=7)
        engine.spawn(0, short(0))
        engine.spawn(1, long(1))
        engine.spawn(2, long(2))
        trace = engine.run()  # must terminate
        assert len(trace) == 5

    def test_reused_barrier_name(self):
        def prog(proc):
            for step in range(3):
                yield WriteEffect(step * 1024 + proc * 4)
                yield BarrierWait("step")

        trace = run_program(4, prog, seed=8)
        steps = [a.addr // 1024 for a in trace]
        assert steps == sorted(steps)


class TestLocalCompute:
    def test_not_traced(self):
        from repro.workloads.engine import LocalCompute

        def prog():
            yield ReadEffect(0)
            yield LocalCompute(5)
            yield WriteEffect(4)

        engine = Engine(1)
        engine.spawn(0, prog())
        trace = engine.run()
        assert len(trace) == 2

    def test_large_compute_yields_the_processor(self):
        """A big compute block ends the thread's quantum, letting other
        threads interleave mid-sequence."""
        from repro.workloads.engine import LocalCompute

        def busy(proc):
            for i in range(10):
                yield WriteEffect(proc * 1024 + i * 4)
                yield LocalCompute(100)

        trace = run_program(2, busy, seed=4, max_quantum=8)
        procs = [a.proc for a in trace]
        # with forced yields, the two threads must interleave
        assert procs != sorted(procs)

    def test_zero_cost_compute_allowed(self):
        from repro.workloads.engine import LocalCompute

        def prog():
            yield LocalCompute(0)
            yield ReadEffect(0)

        engine = Engine(1)
        engine.spawn(0, prog())
        assert len(engine.run()) == 1
