"""Tests for the seed-robustness experiment."""

import pytest

from repro.experiments import common, robustness


@pytest.fixture(autouse=True, scope="module")
def _fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


class TestRobustness:
    @pytest.fixture(scope="class")
    def rows(self):
        return robustness.run(
            apps=("mp3d", "locusroute"),
            seeds=(0, 1, 2),
            cache_size=None,
            scale=0.15,
            num_procs=4,
        )

    def test_positive_reduction_for_every_seed(self, rows):
        for row in rows:
            assert row.minimum > 0, row

    def test_app_ordering_stable_across_seeds(self, rows):
        by_app = {r.app: r for r in rows}
        # mp3d beats locusroute for every individual seed
        for mp3d_red, locus_red in zip(
            by_app["mp3d"].reductions, by_app["locusroute"].reductions
        ):
            assert mp3d_red > locus_red

    def test_spread_small_relative_to_effect(self, rows):
        for row in rows:
            assert row.spread < max(10.0, 0.5 * row.mean), row

    def test_render(self, rows):
        text = robustness.render(rows)
        assert "spread" in text and "mp3d" in text
