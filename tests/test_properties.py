"""Property-based tests (hypothesis) for the coherence machines.

Strategy: generate random access traces over a small address space and a
few processors, then run them through every protocol with the built-in
coherence checker enabled.  The checker raises on any violation of:

* read-latest-write (block versions),
* single-writer / exclusive-copy uniqueness,
* directory copyset exactness,
* the S2 at-most-two-copies guarantee (snooping).

Additional cross-protocol properties compare message counts between
protocol family members on the same trace.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import Access, Op
from repro.directory.policy import (
    AGGRESSIVE,
    BASIC,
    CONSERVATIVE,
    CONVENTIONAL,
    PAPER_POLICIES,
)
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import (
    AdaptiveSnoopingProtocol,
    AlwaysMigrateProtocol,
    MesiProtocol,
)
from repro.system.machine import DirectoryMachine
from repro.trace import synth
from repro.trace.core import Trace

NUM_PROCS = 4

accesses = st.lists(
    st.builds(
        Access,
        proc=st.integers(0, NUM_PROCS - 1),
        op=st.sampled_from([Op.READ, Op.WRITE]),
        # 8 blocks of 16 bytes across 2 pages, word-aligned addresses
        addr=st.integers(0, 2 * 4096 // 64 - 1).map(lambda x: x * 64 + 0),
    ),
    max_size=300,
)

word_accesses = st.lists(
    st.builds(
        Access,
        proc=st.integers(0, NUM_PROCS - 1),
        op=st.sampled_from([Op.READ, Op.WRITE]),
        addr=st.integers(0, 63).map(lambda w: w * 4),
    ),
    max_size=300,
)


def dir_machine(policy, size=None, notify=True):
    cfg = MachineConfig(
        num_procs=NUM_PROCS,
        cache=CacheConfig(size_bytes=size, block_size=16),
        eviction_notification=notify,
    )
    return DirectoryMachine(cfg, policy, check=True)


def bus_machine(protocol, size=None):
    cfg = MachineConfig(
        num_procs=NUM_PROCS, cache=CacheConfig(size_bytes=size, block_size=16)
    )
    return BusMachine(cfg, protocol, check=True)


class TestDirectoryCoherence:
    @settings(max_examples=60, deadline=None)
    @given(trace=word_accesses, policy=st.sampled_from(PAPER_POLICIES))
    def test_infinite_cache_coherent(self, trace, policy):
        m = dir_machine(policy)
        m.run(trace)  # checker raises on violation
        assert m.cache_stats.accesses == len(trace)

    @settings(max_examples=60, deadline=None)
    @given(trace=accesses, policy=st.sampled_from(PAPER_POLICIES))
    def test_finite_cache_coherent(self, trace, policy):
        # 64-byte 1-way cache: heavy conflict evictions
        cfg = MachineConfig(
            num_procs=NUM_PROCS,
            cache=CacheConfig(size_bytes=64, block_size=16, associativity=1),
        )
        m = DirectoryMachine(cfg, policy, check=True)
        m.run(trace)
        assert m.cache_stats.accesses == len(trace)

    @settings(max_examples=40, deadline=None)
    @given(trace=word_accesses)
    def test_adaptation_disabled_equals_conventional(self, trace):
        """Threshold=None must reproduce the conventional machine exactly."""
        conv = dir_machine(CONVENTIONAL)
        conv.run(trace)
        from repro.directory.policy import AdaptivePolicy

        also_conv = dir_machine(
            AdaptivePolicy("off", migratory_threshold=None)
        )
        also_conv.run(trace)
        assert conv.stats.snapshot() == also_conv.stats.snapshot()

    @settings(max_examples=40, deadline=None)
    @given(trace=word_accesses)
    def test_hysteresis_orders_adaptation(self, trace):
        """More conservative protocols never classify more blocks migratory.

        The set of blocks *ever* classified migratory under conservative is
        a subset of those under basic on the same trace (both start
        non-migratory; conservative merely needs a longer streak).
        """
        from repro.directory.entry import DirState

        seen = {}
        for policy in (CONSERVATIVE, BASIC):
            m = dir_machine(policy)
            mig = set()
            for acc in trace:
                m.access(acc.proc, acc.op is Op.WRITE, acc.addr)
                for block, ent in m.protocol.entries.items():
                    if ent.migratory:
                        mig.add(block)
            seen[policy.name] = mig
        assert seen["conservative"] <= seen["basic"]

    @settings(max_examples=30, deadline=None)
    @given(trace=word_accesses)
    def test_counts_conserved(self, trace):
        m = dir_machine(AGGRESSIVE)
        m.run(trace)
        s = m.stats
        assert s.short >= 0 and s.data >= 0
        assert sum(s.by_cause_short.values()) == s.short
        assert sum(s.by_cause_data.values()) == s.data


class TestBusCoherence:
    @settings(max_examples=60, deadline=None)
    @given(
        trace=word_accesses,
        protocol=st.sampled_from(
            [MesiProtocol, AdaptiveSnoopingProtocol, AlwaysMigrateProtocol]
        ),
    )
    def test_infinite_cache_coherent(self, trace, protocol):
        m = bus_machine(protocol())
        m.run(trace)
        assert m.cache_stats.accesses == len(trace)

    @settings(max_examples=60, deadline=None)
    @given(
        trace=accesses,
        protocol=st.sampled_from(
            [MesiProtocol, AdaptiveSnoopingProtocol, AlwaysMigrateProtocol]
        ),
    )
    def test_finite_cache_coherent(self, trace, protocol):
        m = bus_machine(protocol(), size=64)
        m.run(trace)
        assert m.cache_stats.accesses == len(trace)

    @settings(max_examples=40, deadline=None)
    @given(trace=word_accesses)
    def test_adaptive_cost_bounded_vs_mesi(self, trace):
        """Mis-classification costs are bounded.

        The paper's "never sent more messages" is an *empirical*
        observation about its traces, not an invariant: hypothesis found
        the counterexample pinned in
        ``test_misclassified_migration_costs_one_extra_miss``.  Each
        mis-migration costs at most one extra read miss, and migrations
        only arise from write misses or invalidations, so the adaptive
        total is bounded by MESI's total plus MESI's write traffic.
        """
        mesi = bus_machine(MesiProtocol())
        mesi.run(trace)
        adaptive = bus_machine(AdaptiveSnoopingProtocol())
        adaptive.run(trace)
        bound = (
            mesi.bus_stats.total
            + mesi.bus_stats.write_miss
            + mesi.bus_stats.invalidation
        )
        assert adaptive.bus_stats.total <= bound

    def test_misclassified_migration_costs_one_extra_miss(self):
        """Regression: the hypothesis-found counterexample, as expected
        behaviour.  A write miss to an Exclusive copy is migratory
        evidence; when the block is then actually read-shared, the first
        re-read migrates instead of replicating, costing one extra read
        miss before the protocol demotes the block."""
        mesi = bus_machine(MesiProtocol())
        adaptive = bus_machine(AdaptiveSnoopingProtocol())
        for m in (mesi, adaptive):
            m.access(0, False, 0)  # P0 read: E
            m.access(1, True, 0)  # P1 write miss: evidence -> MD
            m.access(0, False, 0)  # P0 re-read: migrates (MESI: shares)
            m.access(1, False, 0)  # P1 re-read: MESI hits, adaptive misses
        assert mesi.bus_stats.total == 3
        assert adaptive.bus_stats.total == 4
        # ...and the block is demoted, so the pattern does not repeat.
        before = adaptive.bus_stats.total
        adaptive.access(0, False, 0)
        adaptive.access(1, False, 0)
        assert adaptive.bus_stats.total == before


class TestAdaptiveAdvantage:
    """The paper's headline property on purely migratory traffic."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        visits=st.integers(10, 60),
        objects=st.integers(1, 6),
    )
    def test_directory_adaptive_never_worse_on_migratory(
        self, seed, visits, objects
    ):
        trace = synth.migratory(
            num_procs=NUM_PROCS, num_objects=objects, visits=visits, seed=seed
        )
        conv = dir_machine(CONVENTIONAL)
        conv.run(trace)
        for policy in (CONSERVATIVE, BASIC, AGGRESSIVE):
            m = dir_machine(policy)
            m.run(trace)
            assert m.stats.total <= conv.stats.total

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_aggressive_approaches_half_on_long_chains(self, seed):
        trace = synth.migratory(
            num_procs=NUM_PROCS, num_objects=2, visits=120,
            reads_per_visit=1, writes_per_visit=1, seed=seed,
        )
        conv = dir_machine(CONVENTIONAL)
        conv.run(trace)
        aggr = dir_machine(AGGRESSIVE)
        aggr.run(trace)
        reduction = 1 - aggr.stats.total / conv.stats.total
        assert reduction > 0.40

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), rounds=st.integers(5, 30))
    def test_adaptive_matches_conventional_on_read_shared(self, seed, rounds):
        trace = synth.read_shared(
            num_procs=NUM_PROCS, num_objects=3, rounds=rounds, seed=seed
        )
        conv = dir_machine(CONVENTIONAL)
        conv.run(trace)
        basic = dir_machine(BASIC)
        basic.run(trace)
        assert basic.stats.total == conv.stats.total


class TestTraceRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(trace=word_accesses)
    def test_save_load_identity(self, trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "t.trace"
        Trace(trace).save(path)
        assert list(Trace.load(path)) == trace
