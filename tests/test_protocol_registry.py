"""The protocol-family registry (:mod:`repro.protocols.registry`).

Three contracts are pinned here:

* **Structure** — every registered family is complete and internally
  consistent: bus families build fresh protocol instances, directory
  families are keyed by their policy's name and resolve to the machine
  class that realizes them, and unkerneled families always carry a
  *named* fallback reason.
* **Reach** — the registry is the single enumeration point: the
  verification matrix, the serving layer, and the conformance oracle
  all see exactly the registered family set, so registering a family
  is the only step needed for it to reach every layer.
* **Cache-key honesty** — the ``|family:`` component of the replay
  result-cache digests separates families that share behavioral policy
  fields but run on different machines, while preserving the
  documented alias-sharing of stock policies.
"""

import pytest

from repro.common.errors import ConfigError
from repro.directory.policy import BASIC, CONVENTIONAL, AdaptivePolicy
from repro.experiments import resultcache
from repro.protocols import registry as families
from repro.protocols.classifier import ClassifierDirectoryMachine
from repro.protocols.hybrid import HybridDirectoryMachine
from repro.protocols.selfinval import SelfInvalidationDirectoryMachine
from repro.system.machine import DirectoryMachine

BUS_FAMILIES = families.bus_families()
DIR_FAMILIES = families.directory_families()


class TestRegistryStructure:
    def test_names_unique_per_engine(self):
        for fams in (BUS_FAMILIES, DIR_FAMILIES):
            names = [fam.name for fam in fams]
            assert len(names) == len(set(names))

    def test_every_bus_family_builds_fresh_protocols(self):
        for fam in BUS_FAMILIES:
            first = fam.make_protocol()
            second = fam.make_protocol()
            assert first is not second
            assert first.name == fam.protocol_name

    def test_directory_families_keyed_by_policy_name(self):
        for fam in DIR_FAMILIES:
            assert fam.policy is not None
            assert fam.policy.name == fam.name

    def test_machine_classes(self):
        by_name = {fam.name: fam.machine_class() for fam in DIR_FAMILIES}
        assert by_name["basic"] is DirectoryMachine
        assert by_name["hybrid-update-invalidate"] is HybridDirectoryMachine
        assert (by_name["self-invalidation"]
                is SelfInvalidationDirectoryMachine)
        assert by_name["pattern-classifier"] is ClassifierDirectoryMachine

    def test_unkerneled_families_name_their_fallback(self):
        for fam in BUS_FAMILIES + DIR_FAMILIES:
            if not fam.kernelable:
                assert fam.fallback_reason == "family-unkerneled"

    def test_unkerneled_family_requires_reason(self):
        with pytest.raises(ConfigError):
            families.ProtocolFamily(
                name="x", engine="bus", description="d",
                factory=lambda: None, kernelable=False,
            )

    def test_behavior_digests_distinct_per_engine(self):
        for fams in (BUS_FAMILIES, DIR_FAMILIES):
            digests = [fam.behavior_digest() for fam in fams]
            assert len(digests) == len(set(digests))

    def test_behavior_digest_carries_tunables(self):
        hybrid = families.family("bus", "hybrid-update-invalidate")
        assert "invalid_threshold=" in hybrid.behavior_digest()
        assert "invalidation_ratio=" in hybrid.behavior_digest()
        selfinval = families.family("bus", "self-invalidation")
        assert "epoch=" in selfinval.behavior_digest()

    def test_unknown_family_names_the_known_set(self):
        with pytest.raises(ConfigError, match="mesi"):
            families.family("bus", "dragon")
        assert families.find("bus", "dragon") is None

    def test_family_of_protocol_resolution(self):
        from repro.snooping.update_protocols import CompetitiveUpdateProtocol

        mesi = families.bus_protocol("mesi")
        assert families.family_of_protocol(mesi).name == "mesi"
        # A re-tuned instance is not the registered family: its own
        # parameterized name already keys caches honestly.
        assert families.family_of_protocol(
            CompetitiveUpdateProtocol(3)
        ) is None

    def test_family_of_policy_resolution(self):
        assert families.family_of_policy(BASIC).name == "basic"
        assert families.family_of_policy(
            AdaptivePolicy("ad-hoc-ablation", migratory_threshold=3)
        ) is None

    def test_make_directory_machine(self):
        from repro.common.config import CacheConfig, MachineConfig

        config = MachineConfig(
            num_procs=2, cache=CacheConfig(size_bytes=None, block_size=16)
        )
        machine = families.make_directory_machine(
            "hybrid-update-invalidate", config
        )
        assert isinstance(machine, HybridDirectoryMachine)
        assert machine.policy is families.directory_policy(
            "hybrid-update-invalidate"
        )


class TestRegistryReach:
    def test_verification_matrix_enumerates_registry(self):
        from repro.verification.model import (
            DIRECTORY_POLICIES,
            SNOOP_PROTOCOLS,
        )

        assert set(SNOOP_PROTOCOLS) == {fam.name for fam in BUS_FAMILIES}
        assert set(DIRECTORY_POLICIES) == {fam.name for fam in DIR_FAMILIES}

    def test_service_enumerates_registry(self):
        from repro.service.protocol import (
            DIRECTORY_POLICIES,
            SNOOPING_PROTOCOLS,
            ServiceError,
            make_snooping_protocol,
        )

        assert set(SNOOPING_PROTOCOLS) == {fam.name for fam in BUS_FAMILIES}
        assert set(DIRECTORY_POLICIES) == {fam.name for fam in DIR_FAMILIES}
        for name in SNOOPING_PROTOCOLS:
            assert make_snooping_protocol(name) is not None
        with pytest.raises(ServiceError):
            make_snooping_protocol("dragon")

    def test_oracle_enumerates_registry(self):
        from repro.conformance import oracle

        full = {fam.name for fam in BUS_FAMILIES if fam.oracle == "full"}
        kernel_only = {fam.name for fam in BUS_FAMILIES
                       if fam.oracle == "kernel-only"}
        assert len(oracle.DEFAULT_SNOOP_FACTORIES) == len(full)
        assert len(oracle.KERNEL_ONLY_SNOOP_FACTORIES) == len(kernel_only)
        stock = {fam.name for fam in DIR_FAMILIES if fam.machine is None}
        assert {p.name for p in oracle.DEFAULT_POLICIES} == stock
        assert {fam.name for fam in oracle.FAMILY_DIRECTORY_MACHINES} == {
            fam.name for fam in DIR_FAMILIES if fam.machine is not None
        }

    def test_registry_verification_expectation_is_total(self):
        # The names `repro-verify --expect-registry` demands certificates
        # for: every family on both engines must form a valid combo.
        from repro.verification.model import VerifyConfig

        for fam in BUS_FAMILIES:
            VerifyConfig(engine="bus", protocol=fam.name)
        for fam in DIR_FAMILIES:
            VerifyConfig(engine="directory", protocol=fam.name)


class TestCacheKeyHonesty:
    def test_family_machines_do_not_share_stock_entries(self):
        # The hybrid and self-invalidation directory policies carry the
        # same behavioral fields as CONVENTIONAL (no migratory
        # detection); their machines differ, so their digests must too.
        hybrid = families.directory_policy("hybrid-update-invalidate")
        selfinval = families.directory_policy("self-invalidation")
        digests = {
            resultcache.policy_digest(CONVENTIONAL),
            resultcache.policy_digest(hybrid),
            resultcache.policy_digest(selfinval),
        }
        assert len(digests) == 3

    def test_classifier_does_not_share_basic_entries(self):
        classifier = families.directory_policy("pattern-classifier")
        assert (resultcache.policy_digest(classifier)
                != resultcache.policy_digest(BASIC))

    def test_stock_alias_sharing_preserved(self):
        # The documented feature: an ablation policy with basic's
        # behavioral fields shares basic's cache entries regardless of
        # its name — both run the stock machine.
        alias = AdaptivePolicy("threshold-1-ablation", migratory_threshold=1)
        assert (resultcache.policy_digest(alias)
                == resultcache.policy_digest(BASIC))

    def test_policy_digest_names_the_family_component(self):
        hybrid = families.directory_policy("hybrid-update-invalidate")
        assert "|family:" in resultcache.policy_digest(hybrid)
        assert "|family:stock" in resultcache.policy_digest(BASIC)

    def test_protocol_digest_names_the_family_component(self):
        digest = resultcache.protocol_digest(
            families.bus_protocol("self-invalidation")
        )
        assert "|family:" in digest
        retuned = resultcache.protocol_digest(
            families.bus_protocol("competitive-update-1")
        )
        assert digest != retuned

    def test_retuning_a_family_changes_its_digest(self):
        # behavior_digest folds the tunables in, so a re-registered
        # family with a different threshold can never serve stale
        # results cached under the old tuning.
        fam = families.family("bus", "hybrid-update-invalidate")
        retuned = families.ProtocolFamily(
            name=fam.name, engine=fam.engine, description=fam.description,
            factory=fam.factory, kernelable=fam.kernelable,
            fallback_reason=fam.fallback_reason, oracle=fam.oracle,
            tunables=(("invalid_threshold", 99),),
            protocol_name=fam.protocol_name,
        )
        assert retuned.behavior_digest() != fam.behavior_digest()
