"""Client retry discipline under 429 bursts and mid-drain 503s.

Two rigs:

* A **scripted** stdlib HTTP server (thread-based, so the sync client
  can block against it) that answers a fixed status sequence — this
  pins down the exact retry contract: the server-provided
  ``Retry-After`` is honoured, attempts are bounded, 503 is terminal
  unless ``retry_draining`` is set, and the attempt count equals the
  request count (a shed or refused attempt is never silently doubled).
* A **real** in-process :class:`CoherenceService`, which proves the
  end-to-end property the scripted rig cannot: a 429'd attempt
  executes nothing, so retry-until-success costs exactly one pool
  execution.
"""

import asyncio
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service import worker
from repro.service.client import (
    AsyncServiceClient,
    Backpressure,
    Draining,
    ServiceClient,
    metric_value,
)
from repro.service.server import CoherenceService, ServiceConfig

SCALE = 0.02

SPEC = {"engine": "directory", "app": "water", "policy": "basic",
        "cache_size": 64 * 1024, "scale": SCALE}

OK_PAYLOAD = {"type": "replay", "cached": False, "coalesced": False,
              "result": {"short": 1, "data": 1}}


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Answers ``server.script`` steps in order; the last step repeats."""

    def do_POST(self):
        length = int(self.headers.get("Content-Length", 0))
        self.rfile.read(length)
        script = self.server.script
        step = script.pop(0) if len(script) > 1 else script[0]
        status, retry_after, payload = step
        self.server.requests.append(status)
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # quiet
        pass


@pytest.fixture
def scripted():
    """A scripted server factory; yields ``start(script) -> server``."""
    servers = []

    def start(script):
        server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
        server.script = list(script)
        server.requests = []
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.shutdown()
        server.server_close()


SHED = (429, "0.05", {"type": "error", "error": "queue full"})
DRAIN = (503, None, {"type": "error", "error": "draining"})
OK = (200, None, OK_PAYLOAD)


class TestScriptedSync:
    def test_429_retries_until_success(self, scripted):
        server = scripted([SHED, SHED, OK])
        client = ServiceClient("127.0.0.1", server.server_address[1])
        response = client.replay_with_retry(**SPEC)
        assert response["result"] == OK_PAYLOAD["result"]
        assert server.requests == [429, 429, 200]

    def test_429_honours_server_retry_after(self, scripted, monkeypatch):
        slept = []
        monkeypatch.setattr(time, "sleep", slept.append)
        server = scripted([(429, "0.25", SHED[2]), OK])
        client = ServiceClient("127.0.0.1", server.server_address[1])
        client.replay_with_retry(**SPEC)
        assert slept == [0.25]

    def test_429_attempts_are_bounded(self, scripted, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda _s: None)
        server = scripted([SHED])
        client = ServiceClient("127.0.0.1", server.server_address[1])
        with pytest.raises(Backpressure) as excinfo:
            client.replay_with_retry(attempts=3, **SPEC)
        assert excinfo.value.retry_after == 0.05
        # Exactly ``attempts`` requests hit the wire — no hidden extras.
        assert server.requests == [429, 429, 429]

    def test_503_is_terminal_by_default(self, scripted):
        server = scripted([DRAIN, OK])
        client = ServiceClient("127.0.0.1", server.server_address[1])
        with pytest.raises(Draining):
            client.replay_with_retry(**SPEC)
        assert server.requests == [503]  # one attempt, no retry

    def test_503_retried_when_opted_in(self, scripted):
        server = scripted([DRAIN, DRAIN, OK])
        client = ServiceClient("127.0.0.1", server.server_address[1])
        response = client.replay_with_retry(
            retry_draining=True, drain_backoff=0.01, **SPEC
        )
        assert response["result"] == OK_PAYLOAD["result"]
        assert server.requests == [503, 503, 200]

    def test_503_retries_are_bounded(self, scripted):
        server = scripted([DRAIN])
        client = ServiceClient("127.0.0.1", server.server_address[1])
        with pytest.raises(Draining):
            client.replay_with_retry(attempts=3, retry_draining=True,
                                     drain_backoff=0.01, **SPEC)
        assert server.requests == [503, 503, 503]


class TestScriptedAsync:
    def _run(self, server, **retry_kwargs):
        async def main():
            client = AsyncServiceClient("127.0.0.1",
                                        server.server_address[1])
            return await client.replay_with_retry(**retry_kwargs, **SPEC)

        return asyncio.run(main())

    def test_429_retries_until_success(self, scripted):
        server = scripted([SHED, OK])
        response = self._run(server)
        assert response["result"] == OK_PAYLOAD["result"]
        assert server.requests == [429, 200]

    def test_429_waits_at_least_retry_after(self, scripted):
        server = scripted([(429, "0.2", SHED[2]), OK])
        started = time.perf_counter()
        self._run(server)
        assert time.perf_counter() - started >= 0.2

    def test_429_attempts_are_bounded(self, scripted):
        server = scripted([SHED])
        with pytest.raises(Backpressure):
            self._run(server, attempts=2)
        assert server.requests == [429, 429]

    def test_503_terminal_by_default_retried_on_opt_in(self, scripted):
        server = scripted([DRAIN, OK])
        with pytest.raises(Draining):
            self._run(server)
        assert server.requests == [503]
        server.script = [DRAIN, OK]
        server.requests.clear()
        response = self._run(server, retry_draining=True,
                             drain_backoff=0.01)
        assert response["result"] == OK_PAYLOAD["result"]
        assert server.requests == [503, 200]


class TestRealServer:
    """The property the scripted rig cannot prove: shed attempts never
    execute, so a retried request costs exactly one execution."""

    @pytest.fixture(autouse=True)
    def _private_cache(self, tmp_path, monkeypatch):
        from repro.experiments import resultcache

        monkeypatch.setenv("REPRO_RESULT_CACHE",
                           str(tmp_path / "results"))
        resultcache.clear_memory()
        yield
        resultcache.clear_memory()

    def test_retry_after_429_executes_once(self, monkeypatch):
        def slow_replay(spec_payload, handle):
            time.sleep(0.4)
            return {"short": 1, "data": 1, "by_cause_short": {},
                    "by_cause_data": {}}

        monkeypatch.setattr(worker, "run_replay", slow_replay)

        async def main():
            service = CoherenceService(ServiceConfig(port=0, jobs=1,
                                                     max_queue=1))
            await service.start()
            client = AsyncServiceClient("127.0.0.1", service.port)
            try:
                # Fill the only admission slot, then retry into it.
                blocker = asyncio.ensure_future(client.replay(**SPEC))
                await asyncio.sleep(0.1)
                retried = await client.replay_with_retry(
                    **{**SPEC, "policy": "aggressive"}
                )
                await blocker
                samples = await client.metrics()
                shed = metric_value(samples,
                                    "repro_service_requests_total",
                                    endpoint="/v1/replay", status="429")
                executions = metric_value(
                    samples, "repro_service_executions_total",
                    kind="directory",
                )
                return retried, shed, executions
            finally:
                await service.drain()

        retried, shed, executions = asyncio.run(main())
        assert retried["result"]["short"] == 1
        assert shed >= 1            # the first attempt really was shed
        assert executions == 2      # blocker + one retried execution

    def test_mid_restart_503_retried_to_success(self, tmp_path):
        """A one-shard cluster mid-rolling-restart answers 503 ("no
        shard available") on its still-open listener; a retrying client
        rides through the window without a failed request and without
        re-executing cached work."""
        from repro.service.loadgen import ManagedCluster

        with ManagedCluster(shards=1, jobs=1,
                            cache_dir=str(tmp_path / "results"),
                            router_cache=0) as cluster:
            client = ServiceClient("127.0.0.1", cluster.port)
            first = client.replay(**SPEC)

            report = {}
            restarter = threading.Thread(
                target=lambda: report.update(client_b.cluster_restart())
            )
            client_b = ServiceClient("127.0.0.1", cluster.port)
            restarter.start()
            responses = []
            while restarter.is_alive():
                responses.append(client.replay_with_retry(
                    attempts=40, retry_draining=True,
                    drain_backoff=0.05, **SPEC,
                ))
                time.sleep(0.02)
            restarter.join()
            assert report["ok"] is True
            assert responses, "no requests overlapped the restart"
            for response in responses:
                assert response["result"] == first["result"]
            status = client.cluster_status()
            assert status["shards"][0]["restarts"] == 1
