"""Tests for the parallel experiment harness and its determinism."""

import pytest

from repro.experiments import common, table2
from repro.parallel import parallel_map, resolve_jobs


def _square(x):
    return x * x


def _explode(x):
    if x == 3:
        raise RuntimeError(f"worker exploded on {x}")
    return x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-2) == 1

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs()


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=1) == [x * x for x in items]

    def test_parallel_preserves_order(self):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_empty_and_single(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [3], jobs=4) == [9]


class TestWorkerCrash:
    """A raising cell must fail the whole run, promptly and loudly —
    never hang the pool or silently drop the cell."""

    def test_serial_exception_propagates(self):
        with pytest.raises(RuntimeError, match="worker exploded on 3"):
            parallel_map(_explode, list(range(6)), jobs=1)

    def test_parallel_exception_propagates(self):
        with pytest.raises(RuntimeError, match="worker exploded on 3"):
            parallel_map(_explode, list(range(6)), jobs=2)

    def test_parallel_exception_carries_worker_traceback(self):
        with pytest.raises(RuntimeError) as excinfo:
            parallel_map(_explode, list(range(6)), jobs=2)
        # concurrent.futures chains the remote traceback onto the
        # re-raised exception; the original raise site must be visible.
        assert excinfo.value.__cause__ is not None
        assert "_explode" in str(excinfo.value.__cause__)

    def test_parallel_crash_finishes_quickly(self):
        import time

        started = time.time()
        with pytest.raises(RuntimeError):
            parallel_map(_explode, list(range(64)), jobs=2)
        assert time.time() - started < 30  # failed run, not a hang


class TestExperimentDeterminism:
    #: A deliberately tiny slice of the Table 2 sweep.
    KWARGS = dict(
        apps=("mp3d",),
        cache_sizes=(16 * 1024, 64 * 1024),
        scale=0.05,
    )

    def test_table2_parallel_equals_serial(self):
        serial = table2.run(jobs=1, **self.KWARGS)
        common.clear_caches()  # force workers' trace path end-to-end
        parallel = table2.run(jobs=2, **self.KWARGS)
        assert serial == parallel
        # Identical message-stat tables cell by cell.
        for s_row, p_row in zip(serial, parallel):
            assert s_row.cells == p_row.cells


class TestPlacementCache:
    def test_keyed_by_live_trace_object(self):
        """Recreated traces must not inherit a dead trace's placement."""
        config = common.directory_config(16 * 1024)
        first = common.get_trace("mp3d", seed=0, scale=0.05)
        placement_first = common.get_placement("best_static", first, config)
        assert common.get_placement("best_static", first, config) \
            is placement_first
        common.clear_caches()
        second = common.get_trace("mp3d", seed=0, scale=0.05)
        placement_second = common.get_placement("best_static", second, config)
        if second is not first:
            assert placement_second is not placement_first
