"""Tests for the parallel experiment harness and its determinism."""

import pytest

from repro.experiments import common, table2
from repro.parallel import (
    effective_cpu_count,
    effective_workers,
    get_pool,
    parallel_map,
    resolve_jobs,
    shutdown_pool,
    _chunksize,
)


def _square(x):
    return x * x


def _explode(x):
    if x == 3:
        raise RuntimeError(f"worker exploded on {x}")
    return x


def _slow_square(x):
    import time

    time.sleep(0.5)
    return x * x


@pytest.fixture
def real_workers(monkeypatch):
    """Disable the CPU clamp so ``jobs=2`` really uses worker processes.

    On a single-CPU CI runner the clamp would otherwise drop these runs
    to the in-process path, and the pool-contract assertions (remote
    tracebacks, executor reuse) would test nothing.
    """
    monkeypatch.setenv("REPRO_PARALLEL_CLAMP", "off")


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4

    def test_zero_means_all_cpus(self, monkeypatch):
        assert resolve_jobs(0) == effective_cpu_count()
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs() == effective_cpu_count()

    def test_negative_floors_to_one(self):
        assert resolve_jobs(-2) == 1

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs()


class TestEffectiveWorkers:
    def test_capped_at_item_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_CLAMP", "off")
        assert effective_workers(8, 3) == 3

    def test_clamped_to_available_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_CLAMP", raising=False)
        assert effective_workers(64, 64) <= effective_cpu_count()

    def test_clamp_off_honours_literal_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_CLAMP", "off")
        assert effective_workers(3, 8) == 3

    def test_floor_of_one(self):
        assert effective_workers(None, 0) == 1

    def test_chunksize_covers_all_items(self):
        for n in (1, 5, 16, 100):
            for workers in (1, 2, 4):
                chunk = _chunksize(n, workers)
                assert chunk >= 1
                # Every item lands in some chunk; no chunk is empty.
                assert chunk * ((n + chunk - 1) // chunk) >= n


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=1) == [x * x for x in items]

    def test_parallel_preserves_order(self, real_workers):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_empty_and_single(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [3], jobs=4) == [9]


class TestPersistentPool:
    """One executor per session: spawn cost is paid once, not per sweep."""

    def test_pool_reused_across_maps(self, real_workers):
        shutdown_pool()
        assert parallel_map(_square, [1, 2, 3, 4], jobs=2) == [1, 4, 9, 16]
        pool = get_pool(2)
        assert parallel_map(_square, [5, 6], jobs=2) == [25, 36]
        assert get_pool(2) is pool
        # A smaller request reuses the larger pool rather than shrinking.
        assert get_pool(1) is pool

    def test_shutdown_is_idempotent_and_recoverable(self, real_workers):
        shutdown_pool()
        shutdown_pool()
        assert parallel_map(_square, [2, 3], jobs=2) == [4, 9]

    def test_concurrent_shutdown_single_winner(self, real_workers):
        """Racing shutdowns (request handler vs atexit hook) must agree
        on one winner: no double-shutdown, no leaked executor, and the
        pool is recreatable afterwards."""
        import threading

        get_pool(2)
        racers = 8
        barrier = threading.Barrier(racers)
        errors = []

        def hammer():
            barrier.wait()
            try:
                shutdown_pool()
            except BaseException as exc:  # pragma: no cover - the bug
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(racers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert parallel_map(_square, [2, 3], jobs=2) == [4, 9]

    def test_shutdown_races_get_pool_safely(self, real_workers):
        """Interleaved get_pool/shutdown_pool from two threads never
        corrupts the module state: the final get_pool returns a live
        executor."""
        import threading

        shutdown_pool()
        barrier = threading.Barrier(2)
        errors = []

        def churn(body):
            barrier.wait()
            try:
                for _ in range(25):
                    body()
            except BaseException as exc:  # pragma: no cover - the bug
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(lambda: get_pool(2),)),
            threading.Thread(target=churn, args=(shutdown_pool,)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        shutdown_pool()
        assert parallel_map(_square, [5], jobs=2) == [25]

    def test_shutdown_wait_finishes_inflight_work(self, real_workers):
        """``shutdown_pool(wait=True)`` is the graceful-drain path: a
        job already on a worker completes and its future resolves,
        instead of being cancelled out from under a draining server."""
        import time

        shutdown_pool()
        pool = get_pool(2)
        future = pool.submit(_slow_square, 6)
        time.sleep(0.1)  # let the job reach a worker
        shutdown_pool(wait=True)
        assert future.result(timeout=10) == 36

    def test_worker_exception_does_not_break_pool(self, real_workers):
        shutdown_pool()
        with pytest.raises(RuntimeError):
            parallel_map(_explode, list(range(6)), jobs=2)
        # An ordinary exception is not a crashed worker: the same
        # executor keeps serving.
        pool = get_pool(2)
        assert parallel_map(_square, [1, 2, 3], jobs=2) == [1, 4, 9]
        assert get_pool(2) is pool


class TestWorkerCrash:
    """A raising cell must fail the whole run, promptly and loudly —
    never hang the pool or silently drop the cell."""

    def test_serial_exception_propagates(self):
        with pytest.raises(RuntimeError, match="worker exploded on 3"):
            parallel_map(_explode, list(range(6)), jobs=1)

    def test_parallel_exception_propagates(self, real_workers):
        with pytest.raises(RuntimeError, match="worker exploded on 3"):
            parallel_map(_explode, list(range(6)), jobs=2)

    def test_parallel_exception_carries_worker_traceback(self, real_workers):
        with pytest.raises(RuntimeError) as excinfo:
            parallel_map(_explode, list(range(6)), jobs=2)
        # concurrent.futures chains the remote traceback onto the
        # re-raised exception; the original raise site must be visible.
        assert excinfo.value.__cause__ is not None
        assert "_explode" in str(excinfo.value.__cause__)

    def test_parallel_crash_finishes_quickly(self, real_workers):
        import time

        started = time.time()
        with pytest.raises(RuntimeError):
            parallel_map(_explode, list(range(64)), jobs=2)
        assert time.time() - started < 30  # failed run, not a hang


class TestExperimentDeterminism:
    #: A deliberately tiny slice of the Table 2 sweep.
    KWARGS = dict(
        apps=("mp3d",),
        cache_sizes=(16 * 1024, 64 * 1024),
        scale=0.05,
    )

    def test_table2_parallel_equals_serial(self, real_workers):
        serial = table2.run(jobs=1, **self.KWARGS)
        common.clear_caches()  # force workers' trace path end-to-end
        parallel = table2.run(jobs=2, **self.KWARGS)
        assert serial == parallel
        # Identical message-stat tables cell by cell.
        for s_row, p_row in zip(serial, parallel):
            assert s_row.cells == p_row.cells


class TestPlacementCache:
    def test_keyed_by_live_trace_object(self):
        """Recreated traces must not inherit a dead trace's placement."""
        config = common.directory_config(16 * 1024)
        first = common.get_trace("mp3d", seed=0, scale=0.05)
        placement_first = common.get_placement("best_static", first, config)
        assert common.get_placement("best_static", first, config) \
            is placement_first
        common.clear_caches()
        second = common.get_trace("mp3d", seed=0, scale=0.05)
        placement_second = common.get_placement("best_static", second, config)
        if second is not first:
            assert placement_second is not placement_first
