"""Conformance tests for the snooping protocols against Figures 1 and 2.

Each test drives a small bus machine and checks the resulting line states
and bus transaction counts, covering every transition in the Figure 2
tables (local-event rows and bus-request rows).
"""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import ConfigError
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import (
    AdaptiveSnoopingProtocol,
    AlwaysMigrateProtocol,
    MesiProtocol,
)
from repro.snooping.states import SnoopState as St


def bus(protocol=None, size=None, procs=4):
    cfg = MachineConfig(num_procs=procs, cache=CacheConfig(size_bytes=size))
    return BusMachine(cfg, protocol or AdaptiveSnoopingProtocol(), check=True)


def state(machine, proc, block=0):
    line = machine.caches[proc].lookup(block)
    return None if line is None else line.state


class TestMesiBaseline:
    def test_cold_read_fills_exclusive(self):
        m = bus(MesiProtocol())
        m.access(0, False, 0)
        assert state(m, 0) is St.E
        assert m.bus_stats.read_miss == 1

    def test_second_read_shares(self):
        m = bus(MesiProtocol())
        m.access(0, False, 0)
        m.access(1, False, 0)
        assert state(m, 0) is St.S and state(m, 1) is St.S

    def test_exclusive_write_silent(self):
        m = bus(MesiProtocol())
        m.access(0, False, 0)
        m.access(0, True, 0)
        assert state(m, 0) is St.D
        assert m.bus_stats.invalidation == 0

    def test_shared_write_invalidates(self):
        m = bus(MesiProtocol())
        m.access(0, False, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)
        assert state(m, 1) is St.D and state(m, 0) is None
        assert m.bus_stats.invalidation == 1

    def test_dirty_remote_read_downgrades(self):
        m = bus(MesiProtocol())
        m.access(0, True, 0)
        m.access(1, False, 0)
        assert state(m, 0) is St.S and state(m, 1) is St.S
        assert not m.caches[0].lookup(0).dirty  # memory snooped the supply

    def test_write_miss_invalidates_all(self):
        m = bus(MesiProtocol())
        for proc in (0, 1, 2):
            m.access(proc, False, 0)
        m.access(3, True, 0)
        assert state(m, 3) is St.D
        assert all(state(m, p) is None for p in (0, 1, 2))

    def test_migratory_pattern_costs_two_transactions_per_hop(self):
        m = bus(MesiProtocol())
        m.access(0, True, 0)
        base = m.bus_stats.total
        m.access(1, False, 0)
        m.access(1, True, 0)
        assert m.bus_stats.total - base == 2  # read miss + invalidation


class TestAdaptiveLocalEvents:
    """Upper half of Figure 2: transitions on local cache events."""

    def test_crm_no_response_fills_E(self):
        m = bus()
        m.access(0, False, 0)
        assert state(m, 0) is St.E

    def test_crm_shared_response_fills_S(self):
        m = bus()
        m.access(0, False, 0)
        m.access(1, False, 0)
        assert state(m, 1) is St.S

    def test_crm_migratory_response_fills_MC(self):
        m = bus()
        self._make_migratory(m, writer=1)
        m.access(2, False, 0)  # MD at P1 migrates
        assert state(m, 2) is St.MC
        assert state(m, 1) is None

    def test_cwm_no_response_fills_D(self):
        m = bus()
        m.access(0, True, 0)
        assert state(m, 0) is St.D

    def test_cwm_migratory_response_fills_MD(self):
        m = bus()
        m.access(0, True, 0)  # P0 Dirty
        m.access(1, True, 0)  # write miss to single Dirty copy: Migratory
        assert state(m, 1) is St.MD
        assert state(m, 0) is None

    def test_e_cwh_goes_dirty_silently(self):
        m = bus()
        m.access(0, False, 0)
        total = m.bus_stats.total
        m.access(0, True, 0)
        assert state(m, 0) is St.D
        assert m.bus_stats.total == total

    def test_s2_cwh_invalidates_to_D(self):
        m = bus()
        m.access(0, True, 0)  # P0: D
        m.access(1, False, 0)  # P0 -> S2, P1 -> S
        assert state(m, 0) is St.S2
        m.access(0, True, 0)  # the OLDER copy writes: not migratory
        assert state(m, 0) is St.D
        assert state(m, 1) is None

    def test_s_cwh_with_migratory_reply_goes_MD(self):
        m = bus()
        m.access(0, True, 0)
        m.access(1, False, 0)  # P0: S2, P1: S
        m.access(1, True, 0)  # newer copy writes: S2 responder asserts M
        assert state(m, 1) is St.MD

    def test_s_cwh_without_migratory_reply_goes_D(self):
        m = bus()
        m.access(0, True, 0)
        m.access(1, False, 0)
        m.access(2, False, 0)  # three copies: P0 S, P1 S, P2 S
        m.access(2, True, 0)  # no S2 responder: conventional
        assert state(m, 2) is St.D

    def test_mc_cwh_goes_MD_silently(self):
        m = bus()
        self._make_migratory(m, writer=1)
        m.access(2, False, 0)  # P2: MC
        total = m.bus_stats.total
        m.access(2, True, 0)
        assert state(m, 2) is St.MD
        assert m.bus_stats.total == total  # the whole point of the protocol

    @staticmethod
    def _make_migratory(m, writer):
        """Put block 0 in MD state at `writer` via the detection sequence."""
        other = 0 if writer != 0 else 3
        m.access(other, True, 0)
        m.access(writer, False, 0)
        m.access(writer, True, 0)
        assert state(m, writer) is St.MD


class TestAdaptiveBusRequests:
    """Lower half of Figure 2: transitions on bus requests."""

    def test_e_brmr_to_s2(self):
        m = bus()
        m.access(0, False, 0)  # E
        m.access(1, False, 0)
        assert state(m, 0) is St.S2
        assert state(m, 1) is St.S

    def test_e_bwmr_asserts_migratory(self):
        m = bus()
        m.access(0, False, 0)  # E
        m.access(1, True, 0)
        assert state(m, 0) is None
        assert state(m, 1) is St.MD

    def test_d_brmr_to_s2_provides(self):
        m = bus()
        m.access(0, True, 0)
        m.access(1, False, 0)
        assert state(m, 0) is St.S2
        assert not m.caches[0].lookup(0).dirty

    def test_s2_brmr_falls_back_to_s(self):
        m = bus()
        m.access(0, True, 0)
        m.access(1, False, 0)  # P0: S2
        m.access(2, False, 0)  # third copy: P0 drops to plain S
        assert state(m, 0) is St.S
        assert state(m, 2) is St.S

    def test_s2_bwmr_invalidates_without_assert(self):
        m = bus()
        m.access(0, True, 0)
        m.access(1, False, 0)  # P0 S2, P1 S
        m.access(2, True, 0)  # write miss with two copies: conventional
        assert state(m, 2) is St.D
        assert state(m, 0) is None and state(m, 1) is None

    def test_mc_brmr_demotes_to_s2(self):
        m = bus()
        TestAdaptiveLocalEvents._make_migratory(m, writer=1)
        m.access(2, False, 0)  # P2: MC (clean migratory)
        m.access(3, False, 0)  # miss request while clean: demote
        assert state(m, 2) is St.S2
        assert state(m, 3) is St.S

    def test_mc_bwmr_demotes_without_assert(self):
        m = bus()
        TestAdaptiveLocalEvents._make_migratory(m, writer=1)
        m.access(2, False, 0)  # P2: MC
        m.access(3, True, 0)  # write miss: MC demotes, no Migratory assert
        assert state(m, 2) is None
        assert state(m, 3) is St.D

    def test_md_brmr_migrates(self):
        m = bus()
        TestAdaptiveLocalEvents._make_migratory(m, writer=1)
        m.access(2, False, 0)
        assert state(m, 1) is None
        assert state(m, 2) is St.MC

    def test_md_bwmr_migrates(self):
        m = bus()
        TestAdaptiveLocalEvents._make_migratory(m, writer=1)
        m.access(2, True, 0)
        assert state(m, 1) is None
        assert state(m, 2) is St.MD

    def test_steady_state_migration_is_one_transaction_per_hop(self):
        m = bus()
        TestAdaptiveLocalEvents._make_migratory(m, writer=1)
        base = m.bus_stats.total
        for turn in range(10):
            proc = 2 + (turn % 2)
            m.access(proc, False, 0)
            m.access(proc, True, 0)
        assert m.bus_stats.total - base == 10  # one read miss per hop


class TestAlwaysMigrate:
    def test_dirty_read_miss_migrates(self):
        m = bus(AlwaysMigrateProtocol())
        m.access(0, True, 0)
        m.access(1, False, 0)
        assert state(m, 0) is None
        assert state(m, 1) is St.MC  # owned clean

    def test_read_shared_ping_pongs(self):
        """Thakkar's observation: written-once data causes extra misses."""
        adaptive = bus(AdaptiveSnoopingProtocol())
        always = bus(AlwaysMigrateProtocol())
        for m in (adaptive, always):
            m.access(0, True, 0)  # initialise
            for r in range(8):
                for proc in range(4):
                    m.access(proc, False, 0)
        assert always.bus_stats.read_miss > adaptive.bus_stats.read_miss

    def test_owned_clean_write_silent(self):
        m = bus(AlwaysMigrateProtocol())
        m.access(0, True, 0)
        m.access(1, False, 0)  # migrate to P1 (MC)
        total = m.bus_stats.total
        m.access(1, True, 0)
        assert state(m, 1) is St.D
        assert m.bus_stats.total == total

    def test_owned_clean_remote_read_replicates(self):
        m = bus(AlwaysMigrateProtocol())
        m.access(0, True, 0)
        m.access(1, False, 0)  # P1: MC
        m.access(2, False, 0)  # clean: replicate, don't migrate
        assert state(m, 1) is St.S and state(m, 2) is St.S


class TestBusReplacement:
    def test_dirty_victim_writes_back(self):
        cfg = MachineConfig(
            num_procs=2,
            cache=CacheConfig(size_bytes=64, block_size=16, associativity=2),
        )
        m = BusMachine(cfg, AdaptiveSnoopingProtocol(), check=True)
        m.access(0, True, 0)  # block 0, set 0, dirty
        m.access(0, False, 32)  # block 2, set 0
        m.access(0, False, 64)  # block 4, set 0: evicts block 0
        assert m.bus_stats.writeback == 1
        assert m.caches[0].lookup(0) is None

    def test_clean_victim_silent(self):
        cfg = MachineConfig(
            num_procs=2,
            cache=CacheConfig(size_bytes=64, block_size=16, associativity=2),
        )
        m = BusMachine(cfg, AdaptiveSnoopingProtocol(), check=True)
        for addr in (0, 32, 64):
            m.access(0, False, addr)
        assert m.bus_stats.writeback == 0

    def test_classification_lost_when_uncached(self):
        """A snooping protocol cannot remember uncached-block state."""
        cfg = MachineConfig(
            num_procs=3,
            cache=CacheConfig(size_bytes=64, block_size=16, associativity=2),
        )
        m = BusMachine(cfg, AdaptiveSnoopingProtocol(), check=True)
        # Make block 0 migratory at P1.
        m.access(0, True, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)
        assert state(m, 1) is St.MD
        # Evict it (writeback), then reload: fills E, not MC.
        m.access(1, False, 32)
        m.access(1, False, 64)
        assert m.caches[1].lookup(0) is None
        m.access(2, False, 0)
        assert state(m, 2) is St.E
