"""Smoke tests: every example script must run and produce its story."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None, capsys=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    except SystemExit as exc:
        assert not exc.code, f"{name} exited with {exc.code}"
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "CC-NUMA directory machine" in out
    assert "aggressive" in out
    assert "classified 8 of 8 blocks as migratory" in out


def test_protocol_explorer(capsys):
    run_example("protocol_explorer.py")
    out = capsys.readouterr().out
    assert "Migratory detection" in out
    assert "one copy/migratory" in out
    assert "Read-shared data is left alone" in out


def test_custom_workload(capsys):
    run_example("custom_workload.py")
    out = capsys.readouterr().out
    assert "pipeline trace" in out
    assert "migratory" in out
    assert "protocol comparison" in out


def test_false_sharing_study(capsys):
    run_example("false_sharing_study.py")
    out = capsys.readouterr().out
    assert "packed (eight counters per block)" in out
    assert "padded (one counter per block)" in out
    assert "100.0%" in out  # padded variant is fully private


@pytest.mark.slow  # ~35s: the full campaign even at tiny scale
def test_splash_campaign_tiny(capsys, tmp_path):
    out_file = tmp_path / "report.txt"
    run_example(
        "splash_campaign.py",
        ["--scale", "0.05", "--out", str(out_file)],
    )
    report = out_file.read_text()
    assert "==== table2" in report
    assert "==== bus" in report
    assert "==== fig2" in report


def test_telemetry_tour(capsys, tmp_path):
    run_example("telemetry_tour.py", ["--out", str(tmp_path)])
    out = capsys.readouterr().out
    assert "protocol-visible steps" in out
    assert "migratory from step" in out
    assert "identical to the directory's own end-of-run state" in out
    assert (tmp_path / "events.jsonl").exists()
    assert (tmp_path / "metrics.prom").exists()


def test_latency_tolerance_study(capsys):
    run_example("latency_tolerance_study.py", ["--scale", "0.1"])
    out = capsys.readouterr().out
    assert "closed-form" in out
    assert "event-driven" in out
    assert "prefetch-exclusive" in out
