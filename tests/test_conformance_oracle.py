"""The differential oracle: clean on correct engines, loud on broken ones."""

import pytest

from repro.conformance import bugs
from repro.conformance.fuzzer import PROFILES, generate_case
from repro.conformance.oracle import CaseFailure, SCReference, run_case


class TestCleanEngines:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("seed", range(3))
    def test_shipped_engines_pass(self, profile, seed):
        assert run_case(generate_case(seed, profile)) is None


@pytest.mark.fuzz
class TestExtendedSweep:
    """Nightly-only: a wider seed sweep than the tier-1 smoke above."""

    @pytest.mark.parametrize("profile", PROFILES)
    def test_forty_seeds_per_profile_pass(self, profile):
        for seed in range(40):
            failure = run_case(generate_case(seed, profile))
            assert failure is None, f"{profile} seed {seed}: {failure}"


class TestSCReference:
    def test_tracks_latest_write_per_block(self):
        ref = SCReference(block_shift=4)  # 16-byte blocks
        ref.access(0, False, 0)     # reads never advance versions
        ref.access(0, True, 0)      # v1 -> block 0
        ref.access(1, True, 20)     # v2 -> block 1
        ref.access(2, True, 4)      # v3 -> block 0 again
        assert ref.writes == 3
        assert ref.latest == {0: 3, 1: 2}


class TestFaultInjection:
    def test_directory_dropped_invalidation_caught(self):
        case = generate_case(0, "migratory")
        failure = run_case(
            case, **bugs.engine_overrides("drop-invalidation")
        )
        assert failure is not None
        assert failure.stage == "invariants"
        assert failure.engine.startswith("directory[")

    def test_packed_stat_skew_caught(self):
        case = generate_case(0, "uniform")
        failure = run_case(case, **bugs.engine_overrides("packed-skew"))
        assert failure is not None
        assert failure.stage == "packed-diff"
        assert "read_hits" in failure.detail

    def test_snoop_dropped_invalidation_caught(self):
        case = generate_case(0, "migratory")
        failure = run_case(
            case, **bugs.engine_overrides("snoop-drop-invalidation")
        )
        assert failure is not None
        assert failure.stage == "invariants"
        assert failure.engine.startswith("bus[")

    def test_snoop_stale_fill_caught(self):
        case = generate_case(0, "uniform")
        failure = run_case(
            case, **bugs.engine_overrides("snoop-stale-fill")
        )
        assert failure is not None
        assert failure.stage == "invariants"

    def test_unknown_injection_rejected(self):
        with pytest.raises(ValueError, match="unknown injection"):
            bugs.engine_overrides("not-a-bug")

    def test_none_injection_is_empty(self):
        assert bugs.engine_overrides("none") == {}


class TestCaseFailure:
    def test_str_names_stage_engine_detail(self):
        failure = CaseFailure("invariants", "directory[basic]", "boom")
        assert str(failure) == "invariants directory[basic]: boom"
