"""Tests for directory-entry storage accounting."""

import pytest

from repro.analysis.overhead import (
    adaptive_layout,
    conventional_layout,
    overhead_table,
)
from repro.directory.policy import (
    AGGRESSIVE,
    BASIC,
    CONSERVATIVE,
    PAPER_POLICIES,
    AdaptivePolicy,
)


class TestLayouts:
    def test_conventional_16_nodes(self):
        layout = conventional_layout(16)
        assert layout.total_bits == 2 + 16

    def test_adaptive_adds_state_and_invalidator(self):
        layout = adaptive_layout(BASIC, 16)
        # 3 state bits + 16 presence + 4 last-invalidator, no hysteresis
        assert layout.total_bits == 3 + 16 + 4
        assert layout.hysteresis_bits == 0

    def test_conservative_needs_one_hysteresis_bit(self):
        layout = adaptive_layout(CONSERVATIVE, 16)
        assert layout.hysteresis_bits == 1

    def test_ordered_copyset_drops_invalidator(self):
        plain = adaptive_layout(AGGRESSIVE, 16)
        ordered = adaptive_layout(AGGRESSIVE, 16, ordered_copyset=True)
        assert ordered.last_invalidator_bits == 0
        assert ordered.total_bits == plain.total_bits - 4

    def test_deeper_hysteresis_needs_more_bits(self):
        deep = AdaptivePolicy("deep", migratory_threshold=4)
        assert adaptive_layout(deep, 16).hysteresis_bits == 2

    def test_scaling_with_nodes(self):
        small = adaptive_layout(BASIC, 16)
        large = adaptive_layout(BASIC, 64)
        assert large.copyset_bits == 64
        assert large.last_invalidator_bits == 6
        assert large.total_bits > small.total_bits

    def test_memory_overhead_shrinks_with_block_size(self):
        layout = adaptive_layout(BASIC, 16)
        assert layout.memory_overhead(16) > layout.memory_overhead(256)

    def test_adaptive_increase_is_modest(self):
        """The paper's hardware-cost claim: a few bits per entry."""
        conv = conventional_layout(16)
        for policy in PAPER_POLICIES[1:]:
            adaptive = adaptive_layout(policy, 16)
            assert adaptive.total_bits - conv.total_bits <= 6


def test_overhead_table_renders():
    text = overhead_table(PAPER_POLICIES)
    assert "conventional" in text
    assert "ordered copyset" in text
    assert "16B ovh%" in text
