"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.experiments import common
from repro.experiments.runner import COMMANDS, main


@pytest.fixture(autouse=True)
def _fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


class TestArgumentParsing:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["warp-drive"])

    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            main([])

    def test_all_is_a_choice(self):
        # not executed here (slow); just validated by argparse
        import argparse

        parser = argparse.ArgumentParser()
        assert "all" not in COMMANDS  # reserved meta-command


class TestFastCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "==== table1" in out
        assert "read miss" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "match the published Figure 2" in out

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "ordered copyset" in out


class TestWorkloadCommands:
    """Small-scale runs of the trace-driven commands."""

    def test_sharing(self, capsys):
        assert main(["sharing", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "mig %" in out and "mp3d" in out

    def test_write_runs(self, capsys):
        assert main(["write-runs", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "write runs" in out

    def test_seed_changes_results(self, capsys):
        main(["sharing", "--scale", "0.1", "--seed", "1"])
        out1 = capsys.readouterr().out
        common.clear_caches()
        main(["sharing", "--scale", "0.1", "--seed", "2"])
        out2 = capsys.readouterr().out
        assert out1 != out2


class TestTelemetry:
    def test_telemetry_dir_records_machine_events(self, capsys, tmp_path):
        from repro.telemetry import runtime, validate_jsonl
        from repro.telemetry.sinks import read_jsonl

        tel = tmp_path / "tel"
        assert main(["bus", "--scale", "0.01",
                     "--telemetry-dir", str(tel)]) == 0
        assert runtime.active() is None  # session torn down
        assert validate_jsonl(tel / "events.jsonl") > 0
        types = {r["type"] for r in read_jsonl(tel / "events.jsonl")}
        # experiment + replay spans, plus instrumented machine events.
        assert {"span", "coherence", "classification"} <= types
        metrics = (tel / "metrics.prom").read_text()
        assert "repro_span_seconds" in metrics
        assert "repro_steps_total" in metrics

    def test_no_telemetry_dir_leaves_no_session(self, capsys):
        from repro.telemetry import runtime

        assert main(["table1"]) == 0
        assert runtime.active() is None


def test_every_command_is_callable():
    """All registered commands exist and have docstring-visible names."""
    for name, command in COMMANDS.items():
        assert callable(command), name
        assert "-" in name or name.isalnum()
