"""Failure injection: the coherence checkers must catch broken protocols.

A checker that never fires is worthless evidence.  These tests implant
classic coherence bugs — now maintained as first-class engine variants
in :mod:`repro.conformance.bugs` — and assert that the shared invariant
layer (:mod:`repro.conformance.invariants`) and the machines'
version/invariant checkers detect each one.  Every bug here is a real
historical failure mode: forgotten invalidations, stale fills, lost
dirty bits, phantom directory state.
"""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import ProtocolError
from repro.conformance.bugs import (
    DropsInvalidationsDirectory,
    FillsStaleExclusive,
    ForgetsToInvalidate,
)
from repro.conformance.invariants import (
    directory_machine_violations,
    snooping_machine_violations,
)
from repro.directory.policy import BASIC
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import MesiProtocol
from repro.system.machine import CState, DirectoryMachine


def bus_machine(protocol):
    cfg = MachineConfig(num_procs=4, cache=CacheConfig(size_bytes=None))
    return BusMachine(cfg, protocol, check=True)


class TestBusCheckerCatchesBugs:
    def test_missing_invalidation_detected(self):
        m = bus_machine(ForgetsToInvalidate())
        m.access(0, False, 0)
        m.access(1, False, 0)
        # Caught immediately: the upgraded copy coexists with P0's.
        with pytest.raises(ProtocolError):
            m.access(1, True, 0)

    def test_stale_copies_after_write_miss_detected(self):
        m = bus_machine(FillsStaleExclusive())
        m.access(0, False, 0)
        with pytest.raises(ProtocolError):
            m.access(1, True, 0)  # two "exclusive"-ish copies coexist

    def test_correct_protocol_passes_same_sequences(self):
        m = bus_machine(MesiProtocol())
        m.access(0, False, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)
        m.access(0, False, 0)  # no error


class TestDirectoryCheckerCatchesBugs:
    def machine(self, cls=DirectoryMachine, check=True):
        cfg = MachineConfig(
            num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
        )
        return cls(cfg, BASIC, check=check)

    def test_phantom_copyset_member_detected(self):
        m = self.machine()
        m.access(0, False, 0)
        # corrupt the directory: claim P3 also holds the block
        m.protocol.entry(0).copyset.add(3)
        with pytest.raises(ProtocolError):
            m.access(1, False, 0)  # next checked op sees the mismatch

    def test_forgotten_invalidation_detected(self):
        m = self.machine()
        m.access(0, False, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)  # correct: P0 invalidated
        # implant a stale resurrected copy at P0
        m.caches[0].insert(0, CState.SHARED, False)
        m.protocol.entry(0).copyset.add(0)
        with pytest.raises(ProtocolError):
            m.access(0, False, 0)  # version check: stale read

    def test_double_exclusive_detected(self):
        m = self.machine()
        m.access(0, True, 0)
        m.caches[1].insert(0, CState.EXCL, True)
        m.protocol.entry(0).copyset.add(1)
        # silent writes skip the checker by design; the next checked
        # operation on the block must catch the corruption
        with pytest.raises(ProtocolError):
            m.access(2, False, 0)  # two dirty/exclusive holders

    def test_dropped_invalidation_machine_detected(self):
        m = self.machine(cls=DropsInvalidationsDirectory)
        m.access(0, False, 0)
        m.access(1, False, 0)
        # The buggy upgrade leaves P0's copy alive while the directory
        # believes it destroyed it; caught at that very step.
        with pytest.raises(ProtocolError):
            m.access(1, True, 0)

    def test_clean_state_passes(self):
        m = self.machine()
        for proc in range(4):
            m.access(proc, False, 0)
        m.access(2, True, 0)
        m.access(3, False, 0)  # no error on a legal history


class TestInvariantLayerStandalone:
    """The shared invariant functions work on unchecked machines too —
    the step-level view the conformance oracle relies on."""

    def test_directory_violations_on_unchecked_machine(self):
        cfg = MachineConfig(
            num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
        )
        m = DropsInvalidationsDirectory(cfg, BASIC, check=False)
        m.access(0, False, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)  # buggy silent corruption, no raise
        problems = directory_machine_violations(m, 0)
        assert any("copyset" in p for p in problems)
        assert any("exclusive copy coexists" in p for p in problems)

    def test_snooping_violations_on_unchecked_machine(self):
        cfg = MachineConfig(num_procs=4, cache=CacheConfig(size_bytes=None))
        m = BusMachine(cfg, ForgetsToInvalidate(), check=False)
        m.access(0, False, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)
        assert snooping_machine_violations(m, 0)

    def test_step_hook_observes_every_checked_step(self):
        cfg = MachineConfig(
            num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
        )
        seen = []
        m = DirectoryMachine(
            cfg, BASIC,
            step_hook=lambda machine, proc, block: seen.append((proc, block)),
        )
        m.access(0, False, 0)   # read miss: hook fires
        m.access(0, False, 0)   # read hit: silent, no hook
        m.access(1, True, 16)   # write miss: hook fires
        assert seen == [(0, 0), (1, 1)]

    def test_step_hook_forces_generic_replay(self):
        from repro.trace import synth

        cfg = MachineConfig(num_procs=4, cache=CacheConfig(size_bytes=None))
        trace = synth.migratory(num_procs=4, num_objects=2, visits=4)
        steps = []
        hooked = DirectoryMachine(
            cfg, BASIC, step_hook=lambda m, p, b: steps.append(b)
        )
        hooked.run(trace)
        assert steps  # the hook actually fired during run()
        plain = DirectoryMachine(cfg, BASIC)
        plain.run(trace)
        assert hooked.stats == plain.stats  # observing changes nothing


class TestCheckerOffMeansNoEnforcement:
    """check=False must not pay for or raise on the same corruption —
    the benchmarks rely on the checker being truly optional."""

    def test_bus_bug_unnoticed_without_checker(self):
        cfg = MachineConfig(num_procs=4, cache=CacheConfig(size_bytes=None))
        m = BusMachine(cfg, ForgetsToInvalidate(), check=False)
        m.access(0, False, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)
        m.access(0, False, 0)  # silently wrong, but no raise
