"""Failure injection: the coherence checkers must catch broken protocols.

A checker that never fires is worthless evidence.  These tests implant
classic coherence bugs into deliberately broken protocol variants and
assert that the version/invariant checkers detect each one.  Every bug
here is a real historical failure mode: forgotten invalidations, stale
fills, lost dirty bits, phantom directory state.
"""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import ProtocolError
from repro.directory.policy import BASIC
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import MesiProtocol
from repro.snooping.states import SnoopState as St
from repro.system.machine import CState, DirectoryMachine


def bus_machine(protocol):
    cfg = MachineConfig(num_procs=4, cache=CacheConfig(size_bytes=None))
    return BusMachine(cfg, protocol, check=True)


class ForgetsToInvalidate(MesiProtocol):
    """Bug: write hits upgrade locally but never invalidate sharers."""

    name = "buggy-no-invalidate"

    def write_hit_invalidate(self, caches, proc, block, line):
        line.state = St.D
        line.dirty = True  # other copies left alive and stale!


class FillsStaleExclusive(MesiProtocol):
    """Bug: write misses fill the writer but leave old copies valid."""

    name = "buggy-stale-copies"

    def write_miss_fill(self, caches, proc, block):
        return St.D, True  # skipped the snoop-invalidate loop


class TestBusCheckerCatchesBugs:
    def test_missing_invalidation_detected(self):
        m = bus_machine(ForgetsToInvalidate())
        m.access(0, False, 0)
        m.access(1, False, 0)
        # Caught immediately: the upgraded copy coexists with P0's.
        with pytest.raises(ProtocolError):
            m.access(1, True, 0)

    def test_stale_copies_after_write_miss_detected(self):
        m = bus_machine(FillsStaleExclusive())
        m.access(0, False, 0)
        with pytest.raises(ProtocolError):
            m.access(1, True, 0)  # two "exclusive"-ish copies coexist

    def test_correct_protocol_passes_same_sequences(self):
        m = bus_machine(MesiProtocol())
        m.access(0, False, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)
        m.access(0, False, 0)  # no error


class TestDirectoryCheckerCatchesBugs:
    def machine(self):
        cfg = MachineConfig(
            num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
        )
        return DirectoryMachine(cfg, BASIC, check=True)

    def test_phantom_copyset_member_detected(self):
        m = self.machine()
        m.access(0, False, 0)
        # corrupt the directory: claim P3 also holds the block
        m.protocol.entry(0).copyset.add(3)
        with pytest.raises(ProtocolError):
            m.access(1, False, 0)  # next checked op sees the mismatch

    def test_forgotten_invalidation_detected(self):
        m = self.machine()
        m.access(0, False, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)  # correct: P0 invalidated
        # implant a stale resurrected copy at P0
        m.caches[0].insert(0, CState.SHARED, False)
        m.protocol.entry(0).copyset.add(0)
        with pytest.raises(ProtocolError):
            m.access(0, False, 0)  # version check: stale read

    def test_double_exclusive_detected(self):
        m = self.machine()
        m.access(0, True, 0)
        m.caches[1].insert(0, CState.EXCL, True)
        m.protocol.entry(0).copyset.add(1)
        # silent writes skip the checker by design; the next checked
        # operation on the block must catch the corruption
        with pytest.raises(ProtocolError):
            m.access(2, False, 0)  # two dirty/exclusive holders

    def test_clean_state_passes(self):
        m = self.machine()
        for proc in range(4):
            m.access(proc, False, 0)
        m.access(2, True, 0)
        m.access(3, False, 0)  # no error on a legal history


class TestCheckerOffMeansNoEnforcement:
    """check=False must not pay for or raise on the same corruption —
    the benchmarks rely on the checker being truly optional."""

    def test_bus_bug_unnoticed_without_checker(self):
        cfg = MachineConfig(num_procs=4, cache=CacheConfig(size_bytes=None))
        m = BusMachine(cfg, ForgetsToInvalidate(), check=False)
        m.access(0, False, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)
        m.access(0, False, 0)  # silently wrong, but no raise
