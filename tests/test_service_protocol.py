"""Tests for the serving layer's versioned wire protocol."""

import pytest

from repro.service.protocol import (
    DIRECTORY_POLICIES,
    MAX_SCALE,
    PROTOCOL_VERSION,
    SNOOPING_PROTOCOLS,
    CompareRequest,
    ExperimentRequest,
    ReplaySpec,
    ServiceError,
    VerifyRequest,
    check_version,
    compare_response,
    error_response,
    make_snooping_protocol,
    parse_replay_request,
    verify_response,
)


class TestReplaySpec:
    def test_defaults_validate(self):
        spec = ReplaySpec()
        assert spec.engine == "directory"
        assert spec.policy in DIRECTORY_POLICIES

    def test_roundtrip_payload(self):
        spec = ReplaySpec(app="mp3d", policy="aggressive", scale=0.5)
        assert ReplaySpec.from_payload(spec.to_payload()) == spec

    @pytest.mark.parametrize("field,value", [
        ("engine", "quantum"),
        ("app", "doom"),
        ("policy", "optimal"),
        ("cache_size", -1),
        ("block_size", 24),          # not a power of two
        ("num_procs", 1),
        ("num_procs", 512),
        ("scale", 0.0),
        ("scale", MAX_SCALE + 1),
        ("placement", "everywhere"),
    ])
    def test_bad_field_rejected(self, field, value):
        with pytest.raises(ServiceError):
            ReplaySpec(**{field: value})

    def test_bus_engine_wants_snooping_protocols(self):
        spec = ReplaySpec(engine="bus", policy="mesi")
        assert spec.policy in SNOOPING_PROTOCOLS
        with pytest.raises(ServiceError):
            ReplaySpec(engine="bus", policy="basic")
        with pytest.raises(ServiceError):
            ReplaySpec(engine="directory", policy="mesi")

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown spec field"):
            ReplaySpec.from_payload({"app": "water", "cheat": True})

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ServiceError):
            ReplaySpec.from_payload(["water"])

    def test_infinite_cache_is_null(self):
        spec = ReplaySpec.from_payload({"cache_size": None})
        assert spec.cache_size is None

    def test_trace_key_is_the_harness_key(self):
        spec = ReplaySpec(app="pthor", num_procs=8, seed=3, scale=0.25)
        assert spec.trace_key == ("pthor", 8, 3, 0.25)


class TestVersioning:
    def test_current_version_accepted(self):
        check_version({"v": PROTOCOL_VERSION})
        check_version({})  # absent defaults to current

    def test_other_version_rejected(self):
        with pytest.raises(ServiceError, match="protocol version"):
            check_version({"v": PROTOCOL_VERSION + 1})

    def test_replay_request_checks_version(self):
        with pytest.raises(ServiceError):
            parse_replay_request({"v": 999, "spec": {}})
        spec = parse_replay_request({"v": PROTOCOL_VERSION, "spec": {}})
        assert spec == ReplaySpec()


class TestCompareRequest:
    def test_defaults_to_every_policy(self):
        request = CompareRequest.from_payload({"spec": {"app": "water"}})
        assert request.policies == tuple(DIRECTORY_POLICIES)
        request = CompareRequest.from_payload(
            {"spec": {"app": "water", "engine": "bus"}}
        )
        assert request.policies == SNOOPING_PROTOCOLS

    def test_explicit_subset_preserved_in_order(self):
        request = CompareRequest.from_payload(
            {"spec": {}, "policies": ["aggressive", "conventional"]}
        )
        assert request.policies == ("aggressive", "conventional")
        specs = request.replay_specs()
        assert [s.policy for s in specs] == ["aggressive", "conventional"]

    def test_spec_level_policy_rejected(self):
        with pytest.raises(ServiceError, match="policies"):
            CompareRequest.from_payload({"spec": {"policy": "basic"}})

    def test_unknown_and_duplicate_policies_rejected(self):
        with pytest.raises(ServiceError):
            CompareRequest.from_payload(
                {"spec": {}, "policies": ["optimal"]}
            )
        with pytest.raises(ServiceError):
            CompareRequest.from_payload(
                {"spec": {}, "policies": ["basic", "basic"]}
            )

    def test_cheapest_breaks_ties_by_request_order(self):
        request = CompareRequest.from_payload(
            {"spec": {}, "policies": ["aggressive", "basic"]}
        )
        response = compare_response(
            request, {"aggressive": {}, "basic": {}},
            {"aggressive": 10, "basic": 10}, 1.0,
        )
        assert response["cheapest"] == "aggressive"
        response = compare_response(
            request, {"aggressive": {}, "basic": {}},
            {"aggressive": 11, "basic": 10}, 1.0,
        )
        assert response["cheapest"] == "basic"


class TestExperimentRequest:
    def test_defaults(self):
        request = ExperimentRequest.from_payload({})
        assert request.name == "table2"
        assert len(request.apps) == 5

    def test_unknown_name_rejected(self):
        with pytest.raises(ServiceError):
            ExperimentRequest.from_payload({"name": "table9"})

    def test_apps_subset_validated(self):
        request = ExperimentRequest.from_payload({"apps": ["water"]})
        assert request.apps == ("water",)
        with pytest.raises(ServiceError):
            ExperimentRequest.from_payload({"apps": []})
        with pytest.raises(ServiceError):
            ExperimentRequest.from_payload({"apps": ["doom"]})


class TestVerifyRequest:
    def test_defaults_validate(self):
        request = VerifyRequest()
        assert request.engine == "all"
        assert request.protocol is None
        assert request.num_procs == 2

    def test_roundtrip_payload(self):
        request = VerifyRequest(engine="directory", protocol="aggressive",
                                num_procs=3, num_blocks=2, evictions=False)
        assert VerifyRequest.from_payload(request.to_payload()) == request

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ServiceError):
            VerifyRequest(engine="bus", protocol="nonesuch")

    def test_rejects_out_of_range_bounds(self):
        with pytest.raises(ServiceError):
            VerifyRequest(num_procs=4)
        with pytest.raises(ServiceError):
            VerifyRequest(num_blocks=3)

    def test_rejects_unknown_fields(self):
        with pytest.raises(ServiceError, match="unknown verify field"):
            VerifyRequest.from_payload({"v": PROTOCOL_VERSION,
                                        "inject": "none"})

    def test_cache_parts_include_table_digests(self):
        parts = VerifyRequest(engine="bus", protocol="mesi").cache_parts()
        assert any("bus/mesi/" in str(part) for part in parts)

    def test_response_shape(self):
        request = VerifyRequest(engine="bus", protocol="mesi")
        certificate = {"kind": "repro-verify-certificate", "ok": True,
                       "combos": []}
        response = verify_response(request, certificate, cached=False,
                                   coalesced=False, elapsed_ms=1.2345)
        assert response["type"] == "verify"
        assert response["ok"] is True
        assert response["certificate"] is certificate
        assert response["elapsed_ms"] == 1.234
        assert response["request"]["engine"] == "bus"


class TestSnoopingFactory:
    @pytest.mark.parametrize("name", SNOOPING_PROTOCOLS)
    def test_known_protocols_construct_fresh(self, name):
        first = make_snooping_protocol(name)
        second = make_snooping_protocol(name)
        assert first is not second
        assert type(first) is type(second)

    def test_unknown_rejected(self):
        with pytest.raises(ServiceError):
            make_snooping_protocol("dragon")


def test_error_response_shape():
    body = error_response("boom")
    assert body["type"] == "error"
    assert body["error"] == "boom"
    assert body["v"] == PROTOCOL_VERSION
