"""Delta debugging: ddmin minimality and end-to-end case shrinking."""

import pytest

from repro.conformance import bugs
from repro.conformance.fuzzer import generate_case
from repro.conformance.oracle import run_case
from repro.conformance.shrink import ddmin, shrink_case


class TestDdmin:
    def test_reduces_to_required_pair(self):
        items = list(range(30))

        def failing(subset):
            return {3, 17} <= set(subset)

        assert ddmin(items, failing) == [3, 17]

    def test_single_culprit(self):
        assert ddmin(list(range(100)), lambda s: 42 in s) == [42]

    def test_preserves_order(self):
        items = list(range(20))

        def failing(subset):
            return {2, 9, 15} <= set(subset)

        assert ddmin(items, failing) == [2, 9, 15]

    def test_result_is_one_minimal(self):
        items = list(range(16))

        def failing(subset):
            # fails iff it contains at least two even numbers
            return sum(1 for x in subset if x % 2 == 0) >= 2

        minimal = ddmin(items, failing)
        assert failing(minimal)
        for i in range(len(minimal)):
            assert not failing(minimal[:i] + minimal[i + 1:])

    def test_everything_matters(self):
        items = [1, 2, 3]
        assert ddmin(items, lambda s: s == items) == items


class TestShrinkCase:
    def test_shrinks_injected_bug_to_tiny_reproducer(self):
        case = generate_case(0, "migratory")
        overrides = bugs.engine_overrides("drop-invalidation")
        result = shrink_case(case, **overrides)
        assert result.ops <= 20
        assert result.ops < result.original_ops == len(case.trace)
        assert result.tests > 0
        assert result.failure is not None
        # The minimal trace still fails on its own.
        assert run_case(result.case, **overrides) is not None
        # ...and passes on the correct engines: the bug is in the
        # machine, not the trace.
        assert run_case(result.case) is None

    def test_shrink_is_deterministic(self):
        case = generate_case(1, "uniform")
        overrides = bugs.engine_overrides("drop-invalidation")
        first = shrink_case(case, **overrides)
        second = shrink_case(case, **overrides)
        assert list(first.case.trace) == list(second.case.trace)
        assert first.tests == second.tests

    def test_passing_case_rejected(self):
        case = generate_case(0, "migratory")
        with pytest.raises(ValueError, match="does not fail"):
            shrink_case(case)
