"""Regression: SIGTERM with a process-pool job in flight must finish
the job.

With ``--jobs 2`` the server executes replays on the shared process
pool.  The drain path used to shut that pool down with
``cancel_futures``, so a SIGTERM arriving while a replay was *on a
worker* killed it and the admitted request failed.  The fix routes the
drain through ``shutdown_pool(wait=True)``; this test pins the
end-to-end behaviour: slow in-flight pool replays (service time
injected via ``REPRO_SERVICE_INJECT_DELAY_MS``, which crosses the
worker spawn) + SIGTERM -> every response is a 200 and the server
exits 0.
"""

import asyncio

import pytest

from repro.service.client import AsyncServiceClient
from repro.service.loadgen import ManagedServer
from repro.service.worker import INJECT_DELAY_ENV

SCALE = 0.02


@pytest.mark.parametrize("jobs", [2])
def test_sigterm_with_pool_job_inflight_finishes_it(tmp_path,
                                                    monkeypatch, jobs):
    monkeypatch.setenv(INJECT_DELAY_ENV, "700")
    server = ManagedServer(max_queue=8, jobs=jobs,
                           cache_dir=str(tmp_path / "results"))
    server.start()

    async def drive():
        client = AsyncServiceClient("127.0.0.1", server.port)
        tasks = [
            asyncio.ensure_future(client.replay(
                engine="directory", app="water", policy="basic",
                cache_size=(32 + i) * 1024, scale=SCALE,
            ))
            for i in range(jobs)
        ]
        # Wait until the replays are on pool workers (inside the
        # injected 700 ms service time), then pull the plug.
        await asyncio.sleep(0.35)
        server.sigterm()
        return await asyncio.gather(*tasks)

    try:
        responses = asyncio.run(drive())
        # The SIGTERM already went out inside drive(); a second signal
        # could land after the server tore down its handler, so just
        # wait for the graceful exit rather than calling stop().
        exit_code = server.wait()
    finally:
        if server.process.poll() is None:  # pragma: no cover - hang guard
            server.process.kill()

    assert len(responses) == jobs
    for response in responses:
        assert response["type"] == "replay"
        assert response["result"]["short"] >= 0
    assert exit_code == 0
