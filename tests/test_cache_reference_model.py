"""Property test: the set-associative cache against a reference model.

The reference model is a deliberately naive per-set recency list; the
production cache must agree with it on every lookup/insert/remove
outcome under arbitrary operation sequences (hypothesis-generated).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.core import SetAssociativeCache
from repro.common.config import CacheConfig

NUM_SETS = 2
WAYS = 2


class ReferenceCache:
    """Brute-force LRU model: per-set list ordered oldest-first."""

    def __init__(self):
        self.sets = [[] for _ in range(NUM_SETS)]  # lists of block ids

    def _set(self, block):
        return self.sets[block % NUM_SETS]

    def lookup(self, block):
        return block in self._set(block)

    def touch(self, block):
        s = self._set(block)
        if block in s:
            s.remove(block)
            s.append(block)

    def insert(self, block):
        s = self._set(block)
        if block in s:
            s.remove(block)
            s.append(block)
            return None
        victim = None
        if len(s) >= WAYS:
            victim = s.pop(0)
        s.append(block)
        return victim

    def remove(self, block):
        s = self._set(block)
        if block in s:
            s.remove(block)
            return True
        return False

    def resident(self):
        return sorted(b for s in self.sets for b in s)


operations = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "touch", "insert", "remove"]),
        st.integers(0, 9),
    ),
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(ops=operations)
def test_matches_reference_model(ops):
    config = CacheConfig(
        size_bytes=NUM_SETS * WAYS * 16, block_size=16, associativity=WAYS
    )
    real = SetAssociativeCache(config)
    model = ReferenceCache()
    for op, block in ops:
        if op == "lookup":
            assert (real.lookup(block) is not None) == model.lookup(block)
        elif op == "touch":
            real.touch(block)
            model.touch(block)
        elif op == "insert":
            victim = real.insert(block, "S")
            expected = model.insert(block)
            assert (victim.block if victim else None) == expected
        elif op == "remove":
            removed = real.remove(block)
            assert (removed is not None) == model.remove(block)
        assert sorted(real.resident_blocks()) == model.resident()
        assert len(real) == len(model.resident())
