"""Structural deep-dives into each SPLASH analogue.

These verify the properties each analogue's docstring promises — the
properties the protocol results depend on — rather than just that the
builders run.
"""

import pytest

from repro.analysis.classify import SharingPattern, summarize_sharing
from repro.analysis.writeruns import write_run_stats
from repro.common.types import Op
from repro.workloads.apps import cholesky, locusroute, mp3d, pthor, water


class TestMp3dStructure:
    @pytest.fixture(scope="class")
    def trace(self):
        return mp3d.build(num_procs=4, particles_per_proc=24, cells=256,
                          steps=8, seed=5)

    def test_particles_private_to_owner(self, trace):
        cell_bytes = 256 * mp3d.CELL_WORDS * 4
        writers = {}
        for acc in trace:
            if acc.addr >= cell_bytes and acc.op is Op.WRITE:
                writers.setdefault(acc.addr, set()).add(acc.proc)
        # particle records and the collision counter live past the cells;
        # all but the counter word must be single-writer
        multi = [a for a, w in writers.items() if len(w) > 1]
        assert len(multi) <= 1  # only the collision counter

    def test_cells_read_modify_written(self, trace):
        """Every cell write is preceded by a read of the same cell by
        the same processor (the RMW visit structure)."""
        cell_bytes = 256 * mp3d.CELL_WORDS * 4
        last_read = {}
        violations = 0
        for acc in trace:
            if acc.addr >= cell_bytes:
                continue
            key = (acc.proc, acc.addr)
            if acc.op is Op.READ:
                last_read[key] = True
            elif not last_read.get(key):
                violations += 1
        assert violations == 0

    def test_cell_visits_mostly_local_walks(self, trace):
        """Consecutive visits by one processor's particle cluster in
        space (the false-sharing mechanism at large blocks)."""
        summary = summarize_sharing(trace, block_size=256)
        # at 256-byte blocks, neighbouring cells from different procs
        # share blocks: the 'other' share must be substantial
        assert summary.block_fraction(SharingPattern.OTHER) > 0.1


class TestWaterStructure:
    @pytest.fixture(scope="class")
    def trace(self):
        return water.build(num_procs=4, molecules_per_proc=6, steps=4,
                           interactions_per_molecule=3, seed=6)

    def test_force_accumulators_migratory(self, trace):
        nmol = 24
        force_lo = nmol * water.POS_WORDS * 4
        force_hi = force_lo + nmol * water.FORCE_WORDS * 4
        sub = [a for a in trace if force_lo <= a.addr < force_hi]
        writers_per_word = {}
        for acc in sub:
            if acc.op is Op.WRITE:
                writers_per_word.setdefault(acc.addr, set()).add(acc.proc)
        multi_writer = sum(1 for w in writers_per_word.values() if len(w) > 1)
        assert multi_writer / len(writers_per_word) > 0.5

    def test_update_phase_follows_force_phase(self, trace):
        """Velocities are only written in the update phase; within each
        step every force write precedes every velocity write."""
        nmol = 24
        vel_lo = nmol * (water.POS_WORDS + water.FORCE_WORDS) * 4
        saw_velocity_write = False
        for acc in trace:
            if acc.op is Op.WRITE and acc.addr >= vel_lo:
                saw_velocity_write = True
        assert saw_velocity_write


class TestCholeskyStructure:
    @pytest.fixture(scope="class")
    def trace(self):
        return cholesky.build(num_procs=4, columns=48, words_per_column=16,
                              updates_per_column=4, touched_words=8, seed=7)

    def test_columns_have_multiple_visitors(self, trace):
        """cmod updates come from different workers than the cdiv."""
        col_bytes = 48 * 16 * 4
        writers = {}
        for acc in trace:
            if acc.op is Op.WRITE and acc.addr < col_bytes:
                writers.setdefault(acc.addr // (16 * 4), set()).add(acc.proc)
        multi = sum(1 for w in writers.values() if len(w) > 1)
        assert multi / len(writers) > 0.4

    def test_migratory_signature(self, trace):
        stats = write_run_stats(trace, block_size=16)
        assert stats.mean_external_rereads < 1.5


class TestPthorStructure:
    @pytest.fixture(scope="class")
    def trace(self):
        return pthor.build(num_procs=4, elements=128, steps=4,
                           activations_per_proc=16, seed=8)

    def test_netlist_is_read_only(self, trace):
        netlist_bytes = 128 * pthor.NETLIST_WORDS * 4
        writes = [a for a in trace
                  if a.op is Op.WRITE and a.addr < netlist_bytes]
        assert writes == []

    def test_element_state_updated_by_many_procs(self, trace):
        netlist_bytes = 128 * pthor.NETLIST_WORDS * 4
        state_bytes = netlist_bytes + 128 * pthor.STATE_WORDS * 4
        writers = {}
        for acc in trace:
            if acc.op is Op.WRITE and netlist_bytes <= acc.addr < state_bytes:
                writers.setdefault(acc.addr, set()).add(acc.proc)
        multi = sum(1 for w in writers.values() if len(w) > 1)
        assert multi > 0

    def test_read_dominated(self, trace):
        assert trace.write_fraction < 0.35


class TestLocusRouteStructure:
    @pytest.fixture(scope="class")
    def trace(self):
        return locusroute.build(num_procs=4, grid_cells=512,
                                wires_per_proc=8, seed=9)

    def test_grid_overwhelmingly_read(self, trace):
        grid_bytes = 512 * 4
        grid_accesses = [a for a in trace if a.addr < grid_bytes]
        writes = sum(1 for a in grid_accesses if a.op is Op.WRITE)
        assert writes / len(grid_accesses) < 0.15

    def test_probe_runs_are_sequential(self, trace):
        """Candidate evaluation reads consecutive grid cells (the
        spatial locality that makes Table 3's counts fall)."""
        grid_bytes = 512 * 4
        per_proc_last = {}
        sequential = 0
        total = 0
        for acc in trace:
            if acc.addr >= grid_bytes or acc.op is not Op.READ:
                continue
            last = per_proc_last.get(acc.proc)
            if last is not None:
                total += 1
                if acc.addr - last == 4 or (acc.addr == 0 and last != 0):
                    sequential += 1
            per_proc_last[acc.proc] = acc.addr
        assert sequential / total > 0.5
