"""The README's quickstart code must actually run as printed."""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def test_quickstart_block_executes(capsys):
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README lost its python quickstart block"
    namespace = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
    out = capsys.readouterr().out
    assert "conventional" in out and "basic" in out


def test_claimed_test_counts_not_overstated():
    """README says '~350 unit/integration/property tests'; keep the
    claim honest (it may only undersell)."""
    text = README.read_text()
    match = re.search(r"~(\d+) unit", text)
    assert match is not None
    import subprocess
    import sys

    collected = subprocess.run(
        [sys.executable, "-m", "pytest", "tests/", "--collect-only", "-q"],
        capture_output=True, text=True,
        cwd=README.parent,
    )
    last = [l for l in collected.stdout.splitlines() if "test" in l][-1]
    total = int(re.search(r"(\d+) tests collected", last).group(1))
    assert total >= int(match.group(1))
