"""Tests for the initial-migratory snooping variant (Section 2.1)."""

from repro.common.config import CacheConfig, MachineConfig
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import AdaptiveSnoopingProtocol
from repro.snooping.states import SnoopState as St
from repro.trace import synth


def bus(initial_migratory, procs=4):
    cfg = MachineConfig(num_procs=procs, cache=CacheConfig(size_bytes=None))
    return BusMachine(
        cfg, AdaptiveSnoopingProtocol(initial_migratory=initial_migratory),
        check=True,
    )


def state(machine, proc, block=0):
    line = machine.caches[proc].lookup(block)
    return None if line is None else line.state


class TestInitialMigratory:
    def test_cold_read_fills_migratory_clean(self):
        m = bus(True)
        m.access(0, False, 0)
        assert state(m, 0) is St.MC

    def test_cold_write_fills_migratory_dirty(self):
        m = bus(True)
        m.access(0, True, 0)
        assert state(m, 0) is St.MD

    def test_exclusive_state_is_dead(self):
        """With migrate-on-read-miss initial policy, E is unreachable."""
        m = bus(True)
        trace = synth.interleave(
            [
                synth.migratory(num_procs=4, num_objects=3, visits=30, seed=1),
                synth.read_shared(num_procs=4, num_objects=3, rounds=10,
                                  base=1 << 16, seed=2),
            ],
            chunk=4,
            seed=3,
        )
        for acc in trace:
            m.access(acc.proc, acc.op.value == "W", acc.addr)
            for cache in m.caches:
                for block in cache.resident_blocks():
                    assert cache.lookup(block).state is not St.E

    def test_first_write_after_cold_read_is_free(self):
        m = bus(True)
        m.access(0, False, 0)
        total = m.bus_stats.total
        m.access(0, True, 0)  # MC -> MD, silent
        assert m.bus_stats.total == total
        assert state(m, 0) is St.MD

    def test_read_shared_demotes_cleanly(self):
        m = bus(True)
        m.access(0, False, 0)  # MC at P0
        m.access(1, False, 0)  # miss request demotes MC
        assert state(m, 0) is St.S2
        assert state(m, 1) is St.S

    def test_matches_default_variant_on_steady_state_migratory(self):
        trace = synth.migratory(num_procs=4, num_objects=4, visits=60, seed=4)
        default = bus(False)
        default.run(trace)
        initial = bus(True)
        initial.run(trace)
        # Initial-migratory saves the cold-start detection transactions,
        # so it can only do better on purely migratory traffic.
        assert initial.bus_stats.total <= default.bus_stats.total

    def test_name_distinguishes_variants(self):
        assert AdaptiveSnoopingProtocol().name == "adaptive"
        assert (
            AdaptiveSnoopingProtocol(initial_migratory=True).name
            == "adaptive-initial-migratory"
        )
