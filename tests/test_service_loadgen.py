"""Unit tests for the load generator's pure parts.

The subprocess-spawning modes (``bench``/``ci-smoke``) are exercised by
the CI service-smoke step; these tests cover the request mix, the
statistics, and the metrics parsing they assert with.
"""

import math

from repro.service.client import metric_value, parse_metrics_text
from repro.service.loadgen import (
    DEFAULT_ZIPF_S,
    RunStats,
    SpecMix,
    percentile,
    zipf_weights,
)
from repro.workloads.profiles import APP_ORDER


class TestZipf:
    def test_weights_normalised_and_decreasing(self):
        weights = zipf_weights(5)
        assert math.isclose(sum(weights), 1.0)
        assert weights == sorted(weights, reverse=True)

    def test_skew_parameter_sharpens_head(self):
        flat = zipf_weights(5, s=0.5)
        sharp = zipf_weights(5, s=2.0)
        assert sharp[0] > flat[0]
        assert sharp[-1] < flat[-1]


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile(values, 0.01) == 1.0


class TestSpecMix:
    def test_deterministic_for_seed(self):
        first = [SpecMix(seed=7).next_spec() for _ in range(20)]
        second = [SpecMix(seed=7).next_spec() for _ in range(20)]
        assert first == second

    def test_different_seed_differs(self):
        a = [SpecMix(seed=1).next_spec() for _ in range(20)]
        b = [SpecMix(seed=2).next_spec() for _ in range(20)]
        assert a != b

    def test_specs_are_servable(self):
        from repro.service.protocol import ReplaySpec

        mix = SpecMix(seed=0)
        for _ in range(30):
            spec = ReplaySpec.from_payload(mix.next_spec())
            assert spec.app in APP_ORDER

    def test_zipf_head_dominates(self):
        mix = SpecMix(seed=0, zipf_s=DEFAULT_ZIPF_S)
        apps = [mix.next_spec()["app"] for _ in range(400)]
        head = apps.count(APP_ORDER[0])
        tail = apps.count(APP_ORDER[-1])
        assert head > tail


class TestRunStats:
    def test_summary_shape(self):
        stats = RunStats()
        for latency in (1.0, 2.0, 3.0, 4.0):
            stats.record(latency)
        stats.shed += 2
        stats.seconds = 2.0
        summary = stats.summary()
        assert summary["requests"] == 4
        assert summary["shed_429"] == 2
        assert summary["throughput_rps"] == 2.0
        assert summary["p50_ms"] == 2.0
        assert summary["p99_ms"] == 4.0

    def test_zero_duration_throughput(self):
        assert RunStats().summary()["throughput_rps"] == 0.0


class TestMetricsParsing:
    TEXT = """\
# HELP repro_service_requests_total service requests
# TYPE repro_service_requests_total counter
repro_service_requests_total{endpoint="/v1/replay",status="200"} 5
repro_service_requests_total{endpoint="/v1/replay",status="429"} 2
repro_service_queue_depth 3
"""

    def test_parses_labelled_and_bare_samples(self):
        samples = parse_metrics_text(self.TEXT)
        assert metric_value(samples, "repro_service_requests_total",
                            endpoint="/v1/replay", status="200") == 5
        assert metric_value(samples, "repro_service_queue_depth") == 3

    def test_label_subset_sums(self):
        samples = parse_metrics_text(self.TEXT)
        assert metric_value(samples, "repro_service_requests_total",
                            endpoint="/v1/replay") == 7

    def test_absent_metric_is_zero(self):
        assert metric_value({}, "no_such_metric") == 0
