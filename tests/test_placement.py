"""Unit tests for page placement policies."""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import read, write
from repro.system.placement import (
    BestStaticPlacement,
    FirstTouchPlacement,
    RoundRobinPlacement,
    make_placement,
)
from repro.trace.core import Trace


class TestRoundRobin:
    def test_modulo(self):
        p = RoundRobinPlacement(4)
        assert [p.home(page, 0) for page in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_ignores_accessor(self):
        p = RoundRobinPlacement(4)
        assert p.home(5, 0) == p.home(5, 3)


class TestFirstTouch:
    def test_first_accessor_wins(self):
        p = FirstTouchPlacement()
        assert p.home(7, accessor=3) == 3
        assert p.home(7, accessor=1) == 3  # sticky

    def test_pages_independent(self):
        p = FirstTouchPlacement()
        assert p.home(1, accessor=2) == 2
        assert p.home(2, accessor=5) == 5


class TestBestStatic:
    def config(self):
        return MachineConfig(num_procs=4, cache=CacheConfig(), page_size=4096)

    def test_majority_accessor(self):
        trace = Trace(
            [read(2, 0), read(2, 4), write(2, 8), read(1, 12)]  # page 0
            + [write(3, 4096), read(0, 4100)]  # page 1: tie broken by count order
        )
        p = BestStaticPlacement.from_trace(trace, self.config())
        assert p.home(0, accessor=0) == 2
        assert p.home(1, accessor=0) in (0, 3)

    def test_unseen_page_falls_back_round_robin(self):
        p = BestStaticPlacement.from_trace(Trace(), self.config())
        assert p.home(6, accessor=1) == 6 % 4

    def test_placement_reduces_remote_traffic(self):
        """Best-static must beat round-robin for proc-affine data."""
        from repro.directory.policy import CONVENTIONAL
        from repro.system.machine import DirectoryMachine
        from repro.trace import synth

        cfg = self.config()
        # base offsets each proc's region by one page so that round-robin
        # homes every region at the *wrong* node.
        trace = synth.private(num_procs=4, accesses_per_proc=200, base=4096,
                              seed=9)
        rr = DirectoryMachine(cfg, CONVENTIONAL,
                              make_placement("round_robin", cfg))
        rr.run(trace)
        best = DirectoryMachine(cfg, CONVENTIONAL,
                                make_placement("best_static", cfg, trace))
        best.run(trace)
        assert best.stats.total < rr.stats.total


class TestMakePlacement:
    def test_kinds(self):
        cfg = MachineConfig(num_procs=4)
        assert isinstance(make_placement("round_robin", cfg), RoundRobinPlacement)
        assert isinstance(make_placement("first_touch", cfg), FirstTouchPlacement)
        assert isinstance(
            make_placement("best_static", cfg, Trace()), BestStaticPlacement
        )

    def test_best_static_requires_trace(self):
        with pytest.raises(ValueError):
            make_placement("best_static", MachineConfig())

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_placement("numa-magic", MachineConfig())
