"""Per-block classification timelines rebuilt from event records."""

from repro.telemetry.timeline import (
    BlockTimeline,
    build_timelines,
    classification_counts,
    hot_block_table,
    migratory_blocks,
    render_timelines,
)

ENGINE = "directory[basic]"


def _cls(step, transition, block=64, streak=0):
    return {
        "type": "classification", "step": step, "engine": ENGINE,
        "block": block, "proc": 0, "transition": transition,
        "from": "ONE_COPY", "to": "ONE_COPY_MIG", "streak": streak,
    }


def _coh(step, kind, block=64):
    return {
        "type": "coherence", "step": step, "engine": ENGINE,
        "kind": kind, "proc": 0, "block": block,
    }


class TestBlockTimeline:
    def test_promote_then_demote(self):
        t = BlockTimeline(ENGINE, 64, promotions=[10], demotions=[20])
        assert t.ever_migratory
        assert not t.final_migratory
        assert t.relapses == 0
        assert t.intervals() == [(10, 20)]

    def test_relapse_counting(self):
        t = BlockTimeline(ENGINE, 64, promotions=[10, 30, 50],
                          demotions=[20, 40])
        assert t.relapses == 2
        assert t.final_migratory
        assert t.intervals() == [(10, 20), (30, 40), (50, None)]

    def test_initially_migratory_opens_interval_at_zero(self):
        t = BlockTimeline(ENGINE, 64, initial_migratory=True,
                          demotions=[15])
        assert t.intervals() == [(0, 15)]
        assert not t.final_migratory
        t2 = BlockTimeline(ENGINE, 64, initial_migratory=True)
        assert t2.final_migratory and t2.intervals() == [(0, None)]

    def test_describe_examples(self):
        t = BlockTimeline(ENGINE, 0x40, promotions=[812, 900, 950, 960],
                          demotions=[850, 930, 955, 970])
        line = t.describe()
        assert line.startswith(f"block 0x40 [{ENGINE}]")
        assert "migratory from step 812" in line
        assert "3 relapse(s)" in line
        assert "demoted for good at step 970" in line

    def test_describe_never_migratory(self):
        t = BlockTimeline(ENGINE, 64, evidence=[5])
        assert "never migratory" in t.describe()
        assert "1 evidence event(s)" in t.describe()


class TestBuildTimelines:
    def test_groups_by_engine_and_block(self):
        records = [
            _cls(10, "promote", block=64),
            _cls(12, "promote", block=65),
            _cls(20, "demote", block=64),
        ]
        timelines = build_timelines(records)
        assert set(timelines) == {(ENGINE, 64), (ENGINE, 65)}
        assert timelines[(ENGINE, 64)].demotions == [20]

    def test_first_demote_implies_initially_migratory(self):
        timelines = build_timelines([_cls(10, "demote")])
        assert timelines[(ENGINE, 64)].initial_migratory

    def test_non_classification_records_ignored(self):
        timelines = build_timelines([_coh(1, "read_miss"),
                                     {"type": "span", "name": "x",
                                      "seconds": 0.1}])
        assert timelines == {}

    def test_counts_and_final_sets(self):
        records = [
            _cls(10, "promote", block=64),
            _cls(11, "evidence", block=65, streak=1),
            _cls(20, "demote", block=64),
            _cls(30, "promote", block=66),
        ]
        counts = classification_counts(records)
        assert counts[(ENGINE, "promote")] == 2
        assert counts[(ENGINE, "demote")] == 1
        assert counts[(ENGINE, "evidence")] == 1
        assert migratory_blocks(build_timelines(records), ENGINE) == {66}


class TestRendering:
    def test_render_orders_by_activity_and_truncates(self):
        records = (
            [_cls(s, "promote", block=1) for s in (1, 5, 9)]
            + [_cls(s, "demote", block=1) for s in (3, 7)]
            + [_cls(2, "promote", block=2)]
            + [_cls(4, "promote", block=3)]
        )
        text = render_timelines(build_timelines(records), top=2)
        lines = text.splitlines()
        assert lines[0].startswith("block 0x1 ")
        assert "and 1 more block(s)" in lines[-1]

    def test_render_empty(self):
        assert "no classification events" in render_timelines({})

    def test_hot_block_table(self):
        records = (
            [_coh(s, "read_miss", block=64) for s in range(4)]
            + [_coh(9, "upgrade", block=64), _coh(5, "write_miss", block=65)]
            + [_cls(9, "promote", block=64)]
        )
        table = hot_block_table(records, top=1)
        assert "0x40" in table
        assert "yes" in table  # block 64 was migratory
        assert "0x41" not in table  # truncated at top=1
