"""The trace fuzzer: determinism, bounds, and profile structure."""

import pytest

from repro.common.types import WORD_SIZE, Op
from repro.conformance.fuzzer import MAX_OPS, PROFILES, FuzzCase, generate_case
from repro.trace.core import Trace

SOME_SEEDS = range(8)


def cases():
    return [
        (profile, seed) for profile in PROFILES for seed in SOME_SEEDS
    ]


class TestDeterminism:
    @pytest.mark.parametrize("profile,seed", cases())
    def test_same_seed_same_case(self, profile, seed):
        a = generate_case(seed, profile)
        b = generate_case(seed, profile)
        assert (a.num_procs, a.block_size, a.cache_size,
                a.associativity, a.replacement) == \
               (b.num_procs, b.block_size, b.cache_size,
                b.associativity, b.replacement)
        assert list(a.trace) == list(b.trace)

    def test_different_seeds_differ(self):
        # Not guaranteed for any single pair, but across eight seeds at
        # least one trace must differ or the fuzzer is a constant.
        traces = [list(generate_case(s, "uniform").trace) for s in SOME_SEEDS]
        assert any(t != traces[0] for t in traces[1:])

    def test_profiles_differ_for_same_seed(self):
        by_profile = {
            p: list(generate_case(0, p).trace) for p in PROFILES
        }
        values = list(by_profile.values())
        assert all(v != values[0] for v in values[1:])


class TestCaseShape:
    @pytest.mark.parametrize("profile,seed", cases())
    def test_bounds_and_wellformedness(self, profile, seed):
        case = generate_case(seed, profile)
        assert 0 < len(case.trace) <= MAX_OPS
        assert case.num_procs >= 2
        assert case.block_size in (16, 32, 64)
        for acc in case.trace:
            assert 0 <= acc.proc < case.num_procs
            assert acc.addr % WORD_SIZE == 0
            assert acc.op in (Op.READ, Op.WRITE)

    @pytest.mark.parametrize("profile,seed", cases())
    def test_finite_geometry_consistent(self, profile, seed):
        case = generate_case(seed, profile)
        if case.cache_size is None:
            return
        # A finite fuzz cache is a whole number of sets of whole blocks.
        assert case.cache_size % (case.block_size * case.associativity) == 0
        assert case.replacement in ("lru", "fifo", "random")

    @pytest.mark.parametrize("profile", PROFILES)
    def test_mixes_reads_and_writes(self, profile):
        ops = {
            acc.op
            for seed in SOME_SEEDS
            for acc in generate_case(seed, profile).trace
        }
        assert ops == {Op.READ, Op.WRITE}

    def test_machine_config_round_trip(self):
        case = generate_case(0, "uniform")
        config = case.machine_config()
        assert config.num_procs == case.num_procs
        assert config.cache.block_size == case.block_size
        assert config.cache.size_bytes == case.cache_size

    def test_with_trace_replaces_only_trace(self):
        case = generate_case(0, "migratory")
        shorter = Trace(list(case.trace)[:3], name="cut")
        other = case.with_trace(shorter)
        assert list(other.trace) == list(shorter)
        assert (other.seed, other.profile, other.num_procs) == \
               (case.seed, case.profile, case.num_procs)

    def test_describe_mentions_key_facts(self):
        case = generate_case(7, "adversarial")
        text = case.describe()
        assert "adversarial" in text and "seed=7" in text

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz profile"):
            generate_case(0, "nope")
