"""Unit tests for cost models and table rendering."""

import pytest

from repro.analysis.costs import (
    EQUAL_COST,
    FOUR_TO_ONE,
    PAPER_COST_MODELS,
    PER_16_BYTES,
    TWO_TO_ONE,
    CostModel,
    percent_saving,
)
from repro.analysis.report import format_table, thousands
from repro.common.stats import MessageStats


def stats(short, data):
    s = MessageStats()
    s.charge("m", short, data)
    return s


class TestCostModels:
    def test_equal(self):
        assert EQUAL_COST.cost(stats(10, 5), 16) == 15

    def test_two_to_one(self):
        assert TWO_TO_ONE.cost(stats(10, 5), 16) == 20

    def test_four_to_one(self):
        assert FOUR_TO_ONE.cost(stats(10, 5), 16) == 30

    def test_per_16_bytes_scales_with_block(self):
        assert PER_16_BYTES.cost(stats(10, 5), 16) == 15 + 5
        assert PER_16_BYTES.cost(stats(10, 5), 256) == 15 + 5 * 16

    def test_paper_models_present(self):
        assert [m.name for m in PAPER_COST_MODELS] == [
            "1:1", "2:1", "4:1", "1+bytes/16",
        ]


class TestPercentSaving:
    def test_headline_saving(self):
        base = stats(100, 50)
        other = stats(50, 50)
        assert percent_saving(base, other) == pytest.approx(100 * 50 / 150)

    def test_weighting_shrinks_saving(self):
        """Short-message-only savings shrink as data gets pricier."""
        base = stats(100, 50)
        other = stats(50, 50)
        savings = [
            percent_saving(base, other, 16, model)
            for model in (EQUAL_COST, TWO_TO_ONE, FOUR_TO_ONE)
        ]
        assert savings[0] > savings[1] > savings[2]

    def test_penalty_negative(self):
        base = stats(100, 50)
        worse = stats(100, 60)
        assert percent_saving(base, worse) < 0

    def test_zero_base(self):
        assert percent_saving(stats(0, 0), stats(1, 1)) == 0.0

    def test_byte_model_block_size_matters(self):
        base = stats(100, 50)
        other = stats(60, 55)  # fewer shorts, more data
        small = percent_saving(base, other, 16, PER_16_BYTES)
        large = percent_saving(base, other, 256, PER_16_BYTES)
        assert large < small  # extra data messages dominate at 256B


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(["name", "x"], [["a", 1], ["bb", 2.345]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "2.3" in lines[-1]

    def test_alignment(self):
        text = format_table(["k", "value"], [["row", 12345]])
        last = text.splitlines()[-1]
        assert last.startswith("row")
        assert last.endswith("12345")

    def test_thousands(self):
        assert thousands(2429000) == 2429.0
        assert thousands(500) == 0.5
