"""Worker telemetry merges byte-identically for any ``--jobs`` count.

Each worker process builds its own registry and event list (sessions do
not cross process boundaries) and returns them as plain payloads; the
parent folds the payloads in submission order.  The regression locked
in here: the merged Prometheus text and the merged event log are
byte-for-byte identical for ``--jobs 1`` and ``--jobs 4``.
"""

from repro.conformance.fuzzer import generate_case
from repro.directory.policy import BASIC
from repro.parallel import parallel_map
from repro.system.machine import DirectoryMachine
from repro.telemetry import MemorySink, MetricsRegistry, attach_recorder
from repro.telemetry.metrics import merge_dicts
from repro.telemetry.sinks import encode_record

SEEDS = (0, 1, 2, 3)


def _worker(seed: int) -> tuple[dict, list]:
    """Replay one fuzz case with per-worker telemetry; return payloads."""
    case = generate_case(seed, "migratory")
    machine = DirectoryMachine(case.machine_config(), BASIC)
    registry = MetricsRegistry()
    sink = MemorySink()
    attach_recorder(machine, registry=registry, sink=sink)
    machine.run(case.trace)
    return registry.to_dict(), sink.records


def _campaign(jobs: int) -> tuple[str, bytes]:
    results = parallel_map(_worker, SEEDS, jobs=jobs)
    metrics = merge_dicts([payload for payload, _ in results])
    log = b"".join(
        (encode_record(record) + "\n").encode("ascii")
        for _, records in results
        for record in records
    )
    return metrics.render_prometheus(), log


def test_jobs_1_and_jobs_4_merge_byte_identically():
    serial_metrics, serial_log = _campaign(jobs=1)
    parallel_metrics, parallel_log = _campaign(jobs=4)
    assert serial_metrics == parallel_metrics
    assert serial_log == parallel_log
    assert serial_metrics  # the campaign actually recorded something
    assert serial_log


def test_merged_registry_sums_worker_series():
    results = parallel_map(_worker, SEEDS, jobs=2)
    payloads = [payload for payload, _ in results]
    merged = merge_dicts(payloads)
    per_worker = [
        MetricsRegistry.from_dict(p).counter("repro_steps_total").value(
            engine="directory[basic]", repro_protocol_family="basic"
        )
        for p in payloads
    ]
    assert merged.counter("repro_steps_total").value(
        engine="directory[basic]", repro_protocol_family="basic"
    ) == sum(per_worker)
    assert all(count > 0 for count in per_worker)
