"""Tests for the content-addressed replay result cache."""

import dataclasses
import json
from collections import Counter

import pytest

from repro.common.stats import BusStats, MessageStats
from repro.directory.policy import BASIC, CONVENTIONAL
from repro.experiments import common, resultcache, table2
from repro.experiments.inval_patterns import InvalPatternRow, _decode_row
from repro.snooping.protocols import AdaptiveSnoopingProtocol
from repro.telemetry import runtime as telemetry
from repro.trace import synth


@pytest.fixture(autouse=True)
def _fresh_cache(tmp_path, monkeypatch):
    """Every test gets its own empty cache directory and zeroed counters."""
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "rc"))
    resultcache.clear_memory()
    resultcache.reset_counts()
    yield
    resultcache.clear_memory()
    resultcache.reset_counts()


def _stats(short=3, data=4):
    stats = MessageStats(short=short, data=data)
    stats.by_cause_short = Counter({"read_miss": short})
    stats.by_cause_data = Counter({"read_miss": data})
    return stats


class TestKeys:
    def test_key_changes_with_every_part(self):
        base = resultcache.result_key("directory", ("t", "c", "p"))
        assert resultcache.result_key("directory", ("t2", "c", "p")) != base
        assert resultcache.result_key("directory", ("t", "c2", "p")) != base
        assert resultcache.result_key("bus", ("t", "c", "p")) != base

    def test_key_changes_with_engine_tag(self, monkeypatch):
        before = resultcache.result_key("directory", ("t",))
        monkeypatch.setattr(resultcache, "_engine_tag", "0" * 16)
        assert resultcache.result_key("directory", ("t",)) != before

    def test_trace_digest_tracks_bytes(self):
        one = synth.migratory(num_procs=4, num_objects=2, visits=3, seed=1)
        two = synth.migratory(num_procs=4, num_objects=2, visits=3, seed=2)
        same = synth.migratory(num_procs=4, num_objects=2, visits=3, seed=1)
        assert one.pack().digest() == same.pack().digest()
        assert one.pack().digest() != two.pack().digest()

    def test_policy_digest_ignores_display_name(self):
        renamed = dataclasses.replace(BASIC, name="threshold-1")
        assert resultcache.policy_digest(renamed) \
            == resultcache.policy_digest(BASIC)
        assert resultcache.policy_digest(CONVENTIONAL) \
            != resultcache.policy_digest(BASIC)

    def test_protocol_digest_separates_variants(self):
        assert resultcache.protocol_digest(AdaptiveSnoopingProtocol()) \
            == resultcache.protocol_digest(AdaptiveSnoopingProtocol())


class TestKernelTableKeys:
    """Replays may run on the table-driven kernels, so cache keys must
    track the *compiled tables*, not just the Python-level parameters."""

    def test_policy_digest_tracks_compiled_table(self, monkeypatch):
        from repro.kernels import tables

        before = resultcache.policy_digest(BASIC)
        monkeypatch.setattr(tables, "dir_table_digest",
                            lambda policy: "feedfacefeedface")
        after = resultcache.policy_digest(BASIC)
        assert after != before
        # The drifted digest must surface as a different cache key.
        assert resultcache.result_key("directory", (before,)) \
            != resultcache.result_key("directory", (after,))

    def test_protocol_digest_tracks_compiled_table(self, monkeypatch):
        from repro.kernels import tables

        before = resultcache.protocol_digest(AdaptiveSnoopingProtocol())
        monkeypatch.setattr(tables, "snoop_table_digest",
                            lambda protocol: "feedfacefeedface")
        after = resultcache.protocol_digest(AdaptiveSnoopingProtocol())
        assert after != before

    def test_uncompiled_protocol_is_marked_not_crashed(self):
        class OffEnvelope(AdaptiveSnoopingProtocol):
            """Subclasses fall outside the kernel envelope by design."""

        digest = resultcache.protocol_digest(OffEnvelope())
        assert "ktable:uncompiled" in digest

    def test_digests_identical_across_processes(self):
        # The whole point of a content-addressed disk cache: a fresh
        # interpreter must derive the same table digests, or every
        # process would miss every other process's entries.
        import pathlib
        import subprocess
        import sys

        src = str(pathlib.Path(resultcache.__file__).parents[2])
        out = subprocess.run(
            [sys.executable, "-c",
             f"import sys; sys.path.insert(0, {src!r})\n"
             "from repro.directory.policy import BASIC\n"
             "from repro.experiments import resultcache\n"
             "from repro.snooping.protocols import AdaptiveSnoopingProtocol\n"
             "print(resultcache.policy_digest(BASIC))\n"
             "print(resultcache.protocol_digest(AdaptiveSnoopingProtocol()))"],
            capture_output=True, text=True, check=True,
        )
        child_policy, child_protocol = out.stdout.split()
        assert child_policy == resultcache.policy_digest(BASIC)
        assert child_protocol == resultcache.protocol_digest(
            AdaptiveSnoopingProtocol())


class TestFailurePaths:
    def test_corrupted_entry_is_a_miss_not_an_error(self):
        calls = []

        def compute():
            calls.append(1)
            return _stats()

        args = ("directory", ("x",), resultcache.encode_message_stats,
                resultcache.decode_message_stats, compute)
        resultcache.memoize(*args)
        key = resultcache.result_key("directory", ("x",))
        path = resultcache.cache_dir() / f"{key}.json"
        assert path.exists()
        path.write_text("{truncated garb")
        resultcache.clear_memory()  # force the disk path
        result = resultcache.memoize(*args)
        assert len(calls) == 2
        assert result.short == 3 and result.data == 4

    def test_wrong_shape_entry_is_recomputed(self):
        calls = []

        def compute():
            calls.append(1)
            return _stats()

        args = ("directory", ("y",), resultcache.encode_message_stats,
                resultcache.decode_message_stats, compute)
        resultcache.memoize(*args)
        key = resultcache.result_key("directory", ("y",))
        # Valid JSON, wrong schema: decode raises, memoize recomputes.
        (resultcache.cache_dir() / f"{key}.json").write_text('{"short": 1}')
        resultcache.clear_memory()
        result = resultcache.memoize(*args)
        assert len(calls) == 2
        assert result.data == 4

    def test_disabled_cache_computes_every_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "off")
        calls = []

        def compute():
            calls.append(1)
            return _stats()

        args = ("directory", ("z",), resultcache.encode_message_stats,
                resultcache.decode_message_stats, compute)
        assert not resultcache.enabled()
        resultcache.memoize(*args)
        resultcache.memoize(*args)
        assert len(calls) == 2
        assert resultcache.counts() == {"hits": 0, "misses": 0, "stores": 0}

    def test_hit_returns_a_fresh_object(self):
        args = ("directory", ("w",), resultcache.encode_message_stats,
                resultcache.decode_message_stats, _stats)
        first = resultcache.memoize(*args)
        first.by_cause_short["read_miss"] = 999  # caller mutates its copy
        second = resultcache.memoize(*args)
        assert second.by_cause_short["read_miss"] == 3


class TestCodecs:
    def test_message_stats_roundtrip(self):
        stats = _stats(short=7, data=9)
        payload = json.loads(json.dumps(
            resultcache.encode_message_stats(stats)))
        back = resultcache.decode_message_stats(payload)
        assert back == stats
        assert isinstance(back.by_cause_short, Counter)

    def test_bus_stats_roundtrip(self):
        stats = BusStats(read_miss=1, write_miss=2, invalidation=3,
                         writeback=4, update=5)
        stats.by_kind = Counter({"read_miss": 1, "update": 5})
        payload = json.loads(json.dumps(resultcache.encode_bus_stats(stats)))
        assert resultcache.decode_bus_stats(payload) == stats

    def test_inval_pattern_buckets_survive_json(self):
        row = InvalPatternRow(app="mp3d", protocol="basic",
                              total_invalidations=5,
                              by_size={1: 3, "4+": 2})
        payload = json.loads(json.dumps(dataclasses.asdict(row)))
        back = _decode_row(payload)
        assert back == row
        assert back.share(1) == pytest.approx(0.6)
        assert back.share("4+") == pytest.approx(0.4)

    def test_timing_profile_int_keys_survive_json(self):
        from repro.timing.sim import TimingParams, TimingProfile, cost

        profile = TimingProfile(
            num_procs=2, total_references=7,
            refs_per_proc=[4, 3], hits_per_proc=[2, 1],
            miss_msgs_per_proc=[{0: 1, 3: 1}, {2: 2}],
            read_miss_msgs={3: 1, 2: 1},
        )
        payload = json.loads(json.dumps(
            resultcache.encode_timing_profile(profile)))
        back = resultcache.decode_timing_profile(payload)
        # JSON stringifies dict keys; the decoder must restore ints or
        # cost() would price message histograms with str * int errors.
        assert back.miss_msgs_per_proc == profile.miss_msgs_per_proc
        assert back.read_miss_msgs == profile.read_miss_msgs
        params = TimingParams(hit_cycles=2, memory_cycles=10,
                              message_cycles=7, compute_cycles_per_ref=1)
        assert cost(back, params) == cost(profile, params)

    def test_timing_profile_shared_across_experiments(self):
        from repro.experiments import exec_time, topology

        apps = ("mp3d",)
        exec_time.run(apps=apps, scale=0.05)
        resultcache.reset_counts()
        # topology prices the same (trace, 64K, round_robin) replays, so
        # its profiles must be cache hits, not fresh simulations.
        topology.run(apps=apps, scale=0.05)
        counts = resultcache.counts()
        assert counts["hits"] >= 2

    def test_memoize_rows_roundtrip(self):
        calls = []

        def compute():
            calls.append(1)
            return [InvalPatternRow(app="a", protocol="p",
                                    total_invalidations=2,
                                    by_size={1: 1, "4+": 1})]

        first = resultcache.memoize_rows("inval_patterns", ("k",),
                                         InvalPatternRow, compute,
                                         decode_row=_decode_row)
        resultcache.clear_memory()
        second = resultcache.memoize_rows("inval_patterns", ("k",),
                                          InvalPatternRow, compute,
                                          decode_row=_decode_row)
        assert len(calls) == 1
        assert second == first


class TestIntegration:
    def test_run_directory_served_from_cache(self):
        trace = common.get_trace("mp3d", seed=0, scale=0.05)
        cold = common.run_directory(trace, BASIC, 16 * 1024)
        before = resultcache.counts()
        resultcache.clear_memory()  # second fetch must survive the disk trip
        warm = common.run_directory(trace, BASIC, 16 * 1024)
        after = resultcache.counts()
        assert warm == cold
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_machine_instrumentation_bypasses_cache(self, tmp_path):
        trace = common.get_trace("mp3d", seed=0, scale=0.05)
        common.run_directory(trace, BASIC, 16 * 1024)  # populate
        resultcache.reset_counts()
        telemetry.configure(telemetry.TelemetrySession(
            tmp_path / "telemetry", instrument_machines=True))
        try:
            common.run_directory(trace, BASIC, 16 * 1024)
        finally:
            telemetry.shutdown()
        # The instrumented replay ran for real: no lookup was even made.
        assert resultcache.counts() == {"hits": 0, "misses": 0, "stores": 0}

    def test_warm_table2_run_is_mostly_hits(self):
        kwargs = dict(apps=("mp3d",), cache_sizes=(16 * 1024,), scale=0.05)
        table2.run(jobs=1, **kwargs)
        resultcache.reset_counts()
        resultcache.clear_memory()
        first = table2.run(jobs=1, **kwargs)
        warm = resultcache.counts()
        total = warm["hits"] + warm["misses"]
        assert total > 0
        assert warm["hits"] >= 0.9 * total
        # And the cached rows render identically to computed ones.
        common.clear_caches()
        resultcache.clear_memory()
        second = table2.run(jobs=1, **kwargs)
        assert table2.render(first) == table2.render(second)
