"""Scenario tests for the CC-NUMA directory machine.

Each scenario drives a small machine by hand and checks the *exact*
message counts implied by Table 1, plus cache/directory side effects.
Unless noted, the machine has 4 nodes, infinite caches, 16-byte blocks,
and round-robin placement (page 0 lives at node 0).
"""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.directory.entry import DirState
from repro.directory.policy import AGGRESSIVE, BASIC, CONSERVATIVE, CONVENTIONAL
from repro.system.machine import CState, DirectoryMachine


def machine(policy=CONVENTIONAL, size=None, block=16, procs=4, notify=True):
    cfg = MachineConfig(
        num_procs=procs,
        cache=CacheConfig(size_bytes=size, block_size=block),
        eviction_notification=notify,
    )
    return DirectoryMachine(cfg, policy, check=True)


class TestConventionalCosts:
    def test_read_miss_local_clean_is_free(self):
        m = machine()
        m.access(0, False, 0)  # home of page 0 is node 0
        assert m.stats.snapshot() == (0, 0)

    def test_read_miss_remote_clean(self):
        m = machine()
        m.access(1, False, 0)
        assert m.stats.snapshot() == (1, 1)

    def test_write_miss_remote_uncached(self):
        m = machine()
        m.access(1, True, 0)
        assert m.stats.snapshot() == (1, 1)  # 1+2*0 short, 1 data

    def test_write_miss_local_uncached_is_free(self):
        m = machine()
        m.access(0, True, 0)
        assert m.stats.snapshot() == (0, 0)  # 2*0 short, 0 data

    def test_read_miss_remote_dirty_distant_owner(self):
        m = machine()
        m.access(1, True, 0)  # P1 dirty: (1,1)
        m.access(2, False, 0)  # dirty at P1, DC=1: (2,2)
        assert m.stats.snapshot() == (3, 3)
        # both copies now shared, memory clean
        assert m.caches[1].lookup(0).state is CState.SHARED
        assert not m.caches[1].lookup(0).dirty
        assert m.caches[2].lookup(0).state is CState.SHARED

    def test_read_miss_local_dirty(self):
        m = machine()
        m.access(1, True, 0)  # (1,1)
        m.access(0, False, 0)  # home reads, dirty at P1: (1,1)
        assert m.stats.snapshot() == (2, 2)

    def test_write_hit_shared_remote(self):
        m = machine()
        m.access(1, True, 0)  # (1,1) P1 dirty
        m.access(2, False, 0)  # (2,2) now shared at P1,P2
        m.access(2, True, 0)  # write hit, others={1}, DC=1: (4,0)
        assert m.stats.snapshot() == (7, 3)
        assert m.caches[1].lookup(0) is None  # invalidated
        line = m.caches[2].lookup(0)
        assert line.state is CState.EXCL and line.dirty

    def test_write_hit_sole_copy_remote_upgrade(self):
        m = machine()
        m.access(1, False, 0)  # (1,1), P1 sole SHARED copy
        m.access(1, True, 0)  # upgrade: write hit remote clean DC=0: (2,0)
        assert m.stats.snapshot() == (3, 1)

    def test_write_hit_sole_copy_local_is_free(self):
        m = machine()
        m.access(0, False, 0)  # free (local clean)
        m.access(0, True, 0)  # write hit local clean DC=0: free
        assert m.stats.snapshot() == (0, 0)

    def test_second_write_is_silent(self):
        m = machine()
        m.access(1, True, 0)
        before = m.stats.snapshot()
        m.access(1, True, 4)  # same block
        m.access(1, False, 8)
        assert m.stats.snapshot() == before

    def test_write_miss_invalidating_many_readers(self):
        m = machine()
        for proc in (0, 1, 2):
            m.access(proc, False, 0)
        # copies at 0,1,2; P3 write miss; home remote; DC=|{1,2}|=2
        m.access(3, True, 0)
        # previous: P0 free; P1 (1,1); P2 (1,1); now (1+4, 1)
        assert m.stats.snapshot() == (7, 3)
        for proc in (0, 1, 2):
            assert m.caches[proc].lookup(0) is None

    def test_migratory_pattern_cost_per_migration(self):
        """The replicate policy pays (6,2) per read-then-write migration."""
        m = machine()
        m.access(1, True, 0)
        base = m.stats.snapshot()
        m.access(2, False, 0)  # (2,2)
        m.access(2, True, 0)  # (4,0)
        assert m.stats.short - base[0] == 6
        assert m.stats.data - base[1] == 2


class TestAdaptiveMachine:
    def test_migration_after_detection_costs_one_transaction(self):
        m = machine(policy=BASIC)
        m.access(1, True, 0)  # P1: write miss
        m.access(2, False, 0)
        m.access(2, True, 0)  # detection: block now migratory
        assert m.protocol.entry(0).state is DirState.ONE_COPY_MIG
        base = m.stats.snapshot()
        m.access(3, False, 0)  # migrate: read miss remote dirty DC=1: (2,2)
        assert (m.stats.short - base[0], m.stats.data - base[1]) == (2, 2)
        line = m.caches[3].lookup(0)
        assert line.state is CState.EXCL and not line.dirty
        assert m.caches[2].lookup(0) is None  # invalidated by migration
        before_write = m.stats.snapshot()
        m.access(3, True, 0)  # silent: write permission already held
        assert m.stats.snapshot() == before_write
        assert m.caches[3].lookup(0).dirty

    def test_adaptive_halves_steady_state_traffic(self):
        conventional = machine(policy=CONVENTIONAL)
        adaptive = machine(policy=BASIC)
        for m in (conventional, adaptive):
            # long migratory chain on one block
            m.access(1, True, 0)
            for turn in range(1, 40):
                proc = 1 + (turn % 3)
                m.access(proc, False, 0)
                m.access(proc, True, 0)
        assert adaptive.stats.total < 0.6 * conventional.stats.total

    def test_clean_migration_demotes(self):
        m = machine(policy=BASIC)
        m.access(1, True, 0)
        m.access(2, False, 0)
        m.access(2, True, 0)  # migratory now
        m.access(3, False, 0)  # migrates to P3 (EXCL clean)
        m.access(1, False, 0)  # P3 never wrote: replicate + demote
        assert m.protocol.entry(0).state is DirState.TWO_COPIES
        assert m.caches[3].lookup(0).state is CState.SHARED
        assert m.caches[1].lookup(0).state is CState.SHARED

    def test_aggressive_first_read_gets_write_permission(self):
        m = machine(policy=AGGRESSIVE)
        m.access(1, False, 0)  # migrate-on-read-miss from cold: (1,1)
        assert m.stats.snapshot() == (1, 1)
        line = m.caches[1].lookup(0)
        assert line.state is CState.EXCL
        before = m.stats.snapshot()
        m.access(1, True, 0)  # free
        assert m.stats.snapshot() == before

    def test_aggressive_read_shared_pays_one_demotion(self):
        m = machine(policy=AGGRESSIVE)
        m.access(1, False, 0)  # migratory fill at P1
        m.access(2, False, 0)  # P1 clean: demote, replicate
        m.access(3, False, 0)
        assert m.protocol.entry(0).state is DirState.THREE_PLUS
        for proc in (1, 2, 3):
            assert m.caches[proc].lookup(0).state is CState.SHARED

    def test_conservative_needs_two_migrations(self):
        m = machine(policy=CONSERVATIVE)
        m.access(1, True, 0)
        m.access(2, False, 0)
        m.access(2, True, 0)  # first evidence
        assert m.protocol.entry(0).state is DirState.ONE_COPY
        m.access(3, False, 0)
        m.access(3, True, 0)  # second evidence
        assert m.protocol.entry(0).state is DirState.ONE_COPY_MIG


class TestEvictions:
    def test_clean_eviction_notifies_home(self):
        # 2 sets * 4 ways = 8 lines of 16B; blocks 0,8,16.. map to set 0
        m = machine(policy=CONVENTIONAL, size=128)
        base = 4096  # page 1, home = node 1
        m.access(0, False, base)  # remote clean read miss: (1,1)
        # Fill set with four more even blocks from page 0 (home node 0,
        # local to proc 0): free fills.
        for i in range(1, 5):
            m.access(0, False, i * 256)
        # victim was block of `base` or one of the free ones; LRU -> base
        assert m.caches[0].lookup(base // 16) is None
        # eviction notification to remote home: +1 short
        assert m.stats.by_cause_short["eviction"] == 1

    def test_dirty_eviction_writes_back(self):
        m = machine(policy=CONVENTIONAL, size=128)
        base = 4096
        m.access(0, True, base)  # remote write miss (1,1), dirty
        for i in range(1, 5):
            m.access(0, False, i * 256)
        assert m.stats.by_cause_data["eviction"] == 1
        # directory forgot the block
        assert m.protocol.entry(base // 16).state is DirState.UNCACHED

    def test_local_eviction_free(self):
        m = machine(policy=CONVENTIONAL, size=128)
        m.access(0, True, 0)  # local, free, dirty
        for i in range(1, 5):
            m.access(0, False, i * 256)
        assert "eviction" not in m.stats.by_cause_short
        assert "eviction" not in m.stats.by_cause_data

    def test_migratory_classification_survives_eviction(self):
        m = machine(policy=BASIC, size=128)
        m.access(1, True, 0)
        m.access(2, False, 0)
        m.access(2, True, 0)
        assert m.protocol.entry(0).state is DirState.ONE_COPY_MIG
        # evict block 0 from P2 (dirty writeback)
        for i in range(1, 5):
            m.access(2, False, i * 256)
        assert m.protocol.entry(0).state is DirState.UNCACHED_MIG
        # reload with a read miss: arrives with write permission
        m.access(3, False, 0)
        line = m.caches[3].lookup(0)
        assert line.state is CState.EXCL
        before = m.stats.snapshot()
        m.access(3, True, 0)
        assert m.stats.snapshot() == before


class TestRunAndStats:
    def test_run_counts_accesses(self):
        from repro.trace import synth

        m = machine(policy=BASIC)
        trace = synth.migratory(num_procs=4, num_objects=2, visits=10, seed=3)
        m.run(trace)
        assert m.cache_stats.accesses == len(trace)

    def test_totals_conserved(self):
        from repro.trace import synth

        m = machine(policy=AGGRESSIVE, size=256)
        trace = synth.migratory(num_procs=4, num_objects=8, visits=20, seed=4)
        m.run(trace)
        s = m.stats
        assert s.total == s.short + s.data
        assert sum(s.by_cause_short.values()) == s.short
        assert sum(s.by_cause_data.values()) == s.data


@pytest.mark.parametrize("policy", [CONVENTIONAL, CONSERVATIVE, BASIC, AGGRESSIVE])
def test_checker_clean_on_random_workload(policy):
    """The built-in coherence checker stays quiet on a mixed workload."""
    from repro.trace import synth

    traces = [
        synth.migratory(num_procs=4, num_objects=4, visits=30, seed=5),
        synth.read_shared(num_procs=4, num_objects=4, rounds=10, base=1 << 16, seed=6),
        synth.false_sharing(num_procs=4, num_blocks=4, rounds=10, base=1 << 17, seed=7),
    ]
    mixed = synth.interleave(traces, chunk=5, seed=8)
    m = machine(policy=policy, size=512)
    m.run(mixed)  # raises ProtocolError on any violation
    assert m.cache_stats.accesses == len(mixed)


class TestInvalidationSizes:
    """Weber & Gupta-style invalidation-pattern statistics."""

    def test_migratory_invalidations_are_single_copy(self):
        from repro.trace import synth

        m = machine(policy=CONVENTIONAL)
        m.run(synth.migratory(num_procs=4, num_objects=2, visits=30, seed=6))
        assert set(m.invalidation_sizes) == {1}

    def test_wide_sharing_produces_large_invalidations(self):
        m = machine(policy=CONVENTIONAL)
        for proc in (0, 1, 2):
            m.access(proc, False, 0)
        m.access(3, True, 0)
        assert m.invalidation_sizes[3] == 1

    def test_silent_writes_record_nothing(self):
        m = machine(policy=CONVENTIONAL)
        m.access(0, True, 0)
        m.access(0, True, 4)
        assert not m.invalidation_sizes

    def test_adaptive_removes_single_copy_invalidations(self):
        from repro.trace import synth

        trace = synth.migratory(num_procs=4, num_objects=2, visits=30,
                                seed=6)
        conv = machine(policy=CONVENTIONAL)
        conv.run(trace)
        aggr = machine(policy=AGGRESSIVE)
        aggr.run(trace)
        assert sum(aggr.invalidation_sizes.values()) < (
            0.2 * sum(conv.invalidation_sizes.values())
        )
