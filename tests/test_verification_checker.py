"""The bounded model checker: matrix verdicts, certificates, parallel
determinism, counterexample paths, and the fault-injection self-test.

Tier-1 runs the 2-processor/1-block configuration (milliseconds per
combo); the full 3-processor/2-block matrix carries the ``slow`` marker
and runs nightly.
"""

import json
import random
from pathlib import Path

import pytest

from repro.conformance import bugs
from repro.conformance.artifacts import iter_reproducers
from repro.conformance.oracle import run_case
from repro.verification import checker
from repro.verification import cli as verify_cli
from repro.verification.checker import (
    PROPERTIES,
    check_config,
    counterexample_case,
    sweep,
)
from repro.verification.model import (
    BLOCK_SIZE,
    MODEL_CHECKABLE_INJECTIONS,
    VerificationError,
    VerifyConfig,
    build_model,
    verify_combos,
)

ALL_COMBOS = verify_combos()

INJECTIONS = sorted(set(MODEL_CHECKABLE_INJECTIONS) - {"none"})

REPRODUCER_DIR = Path(__file__).parent / "reproducers"


class TestMatrix:
    @pytest.mark.parametrize("config", ALL_COMBOS,
                             ids=[c.label for c in ALL_COMBOS])
    def test_every_combo_verifies(self, config):
        result = check_config(config)
        assert result.ok
        assert result.violations == ()
        assert all(count == 0 for count in result.property_counts.values())
        assert result.num_states > 1
        assert result.num_transitions > 0
        assert result.line_states
        if config.engine == "directory":
            assert result.dir_states

    def test_certificate_asserts_zero_violations(self):
        result = sweep()
        certificate = result.certificate()
        assert certificate["ok"] is True
        assert certificate["kind"] == "repro-verify-certificate"
        assert certificate["totals"]["violations"] == 0
        assert certificate["totals"]["combos"] == len(ALL_COMBOS)
        for combo in certificate["combos"]:
            assert combo["ok"] is True
            assert combo["table_digest"]
            for name in PROPERTIES:
                assert combo["properties"][name]["verdict"] == "ok"

    def test_two_blocks_explore_the_product_space(self):
        # Blocks are independent under infinite caches, so the 2-block
        # reachable set must be exactly the square of the 1-block one —
        # a strong structural check on the multi-block generalisation.
        one = check_config(VerifyConfig("bus", "mesi", num_blocks=1))
        two = check_config(VerifyConfig("bus", "mesi", num_blocks=2))
        assert two.num_states == one.num_states ** 2
        assert two.ok

    def test_initial_migratory_still_kills_exclusive(self):
        # The space.py structural theorem survives the richer model.
        default = check_config(VerifyConfig("bus", "adaptive"))
        migratory = check_config(
            VerifyConfig("bus", "adaptive-initial-migratory")
        )
        assert "E" in default.line_states
        assert "E" not in migratory.line_states

    def test_jobs_do_not_change_the_certificate(self):
        serial = sweep(jobs=None).certificate()
        sharded = sweep(jobs=2).certificate()
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(sharded, sort_keys=True))


class TestValidation:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(VerificationError):
            VerifyConfig("bus", "nonesuch")

    def test_stats_only_injection_rejected(self):
        with pytest.raises(VerificationError, match="not model-checkable"):
            VerifyConfig("directory", "basic", inject="packed-skew")

    def test_snoop_injection_requires_mesi(self):
        with pytest.raises(VerificationError, match="MESI"):
            VerifyConfig("bus", "adaptive", inject="snoop-stale-fill")

    def test_directory_injection_rejected_on_bus(self):
        with pytest.raises(VerificationError, match="does not apply"):
            VerifyConfig("bus", "mesi", inject="drop-invalidation")

    def test_state_ceiling_is_enforced(self):
        with pytest.raises(VerificationError, match="exceeds"):
            check_config(VerifyConfig("bus", "mesi"), max_states=5)


class TestFaultInjection:
    """Each seeded bug is caught, shrunk to a path, and replays for
    real on the concrete machines (the checker's self-test)."""

    @pytest.mark.parametrize("inject", INJECTIONS)
    def test_injected_bug_caught_and_shrunk_to_path(self, inject):
        # Evictions off: every counterexample path is then a plain
        # access trace the differential oracle can replay.
        result = sweep(inject=inject, evictions=False)
        assert not result.ok
        for combo in result.results:
            assert not combo.ok, combo.config.label
            assert combo.violations
            example = combo.counterexample()
            assert example is not None, combo.config.label
            case, failure = example
            # BFS paths arrive pre-shrunk: these bugs all trip within
            # a handful of actions.
            assert 1 <= len(case.trace) <= 4
            assert failure.stage in PROPERTIES
            # The path replays to a *real* violation on the concrete
            # machines under the same injection.
            real = run_case(case, **bugs.engine_overrides(inject))
            assert real is not None, (
                f"{combo.config.label}: model counterexample did not "
                f"reproduce on the concrete machine"
            )

    @pytest.mark.parametrize("inject", INJECTIONS)
    def test_violations_write_reproducer_artifacts(self, inject, tmp_path):
        result = sweep(inject=inject, evictions=False)
        written = result.write_reproducers(tmp_path)
        assert len(written) == len(result.results)
        loaded = list(iter_reproducers(tmp_path))
        assert len(loaded) == len(written)
        for _path, case, sidecar in loaded:
            assert sidecar["failure"] is not None
            assert sidecar["failure"]["stage"] in PROPERTIES
            assert len(case.trace) >= 1

    def test_clean_sweep_writes_no_reproducers(self, tmp_path):
        result = sweep(engine="bus", protocol="mesi")
        assert result.write_reproducers(tmp_path) == []
        assert list(iter_reproducers(tmp_path)) == []

    def test_counterexample_corpus_checked_in(self):
        # The regression corpus carries verify-derived reproducers
        # (traces that once demonstrated an injected bug; they replay
        # clean on the production engines via test_reproducers.py).
        names = [path.name for path, _, _ in
                 iter_reproducers(REPRODUCER_DIR)]
        assert any(name.startswith("verify-") for name in names)


class TestAbstractionCrossCheck:
    """Random concrete replays, projected through the checker's own
    abstraction, stay inside the model-checked reachable set."""

    CONFIGS = [
        VerifyConfig("bus", "adaptive", num_procs=2, num_blocks=2),
        VerifyConfig("bus", "competitive-update-1"),
        VerifyConfig("directory", "aggressive"),
        VerifyConfig("directory", "conventional", num_blocks=2),
    ]

    @pytest.mark.parametrize("config", CONFIGS,
                             ids=[c.label for c in CONFIGS])
    def test_random_replays_stay_in_reachable_set(self, config):
        reachable = check_config(config).reachable
        for trial in range(6):
            rng = random.Random(f"checker-cross:{config.label}:{trial}")
            model = build_model(config)  # fresh cold-start machine
            for _ in range(40):
                proc = rng.randrange(config.num_procs)
                block = rng.randrange(config.num_blocks)
                model.machine.access(proc, rng.random() < 0.5,
                                     block * BLOCK_SIZE)
                state = model.extract()
                assert state in reachable, (
                    f"{config.label} trial {trial}: concrete state "
                    f"{state} escaped the model"
                )


class TestCli:
    def test_clean_run_writes_certificate(self, tmp_path, capsys):
        certificate = tmp_path / "certificate.json"
        status = verify_cli.main([
            "--procs", "2", "--blocks", "1",
            "--certificate", str(certificate),
            "--artifacts", str(tmp_path / "artifacts"),
        ])
        assert status == 0
        payload = json.loads(certificate.read_text())
        assert payload["ok"] is True
        assert payload["totals"]["combos"] == len(ALL_COMBOS)
        out = capsys.readouterr().out
        assert "bus/mesi" in out
        assert "all properties ok" in out
        assert not (tmp_path / "artifacts").exists()

    def test_inject_run_fails_and_writes_artifacts(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        status = verify_cli.main([
            "--inject", "drop-invalidation", "--no-evictions",
            "--protocol", "conventional", "--certificate", "-",
            "--artifacts", str(artifacts),
        ])
        assert status == 1
        out = capsys.readouterr().out
        assert "violation" in out
        assert "shortest counterexample" in out
        assert list(iter_reproducers(artifacts))

    def test_unknown_protocol_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            verify_cli.main(["--protocol", "nonesuch"])
        assert excinfo.value.code == 2


class TestFullMatrix:
    """The nightly 3-processor/2-block matrix (certificate scale)."""

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "config", verify_combos(num_procs=3, num_blocks=2),
        ids=[c.label for c in verify_combos(num_procs=3, num_blocks=2)],
    )
    def test_full_matrix_verifies(self, config):
        result = check_config(config, jobs=0)
        assert result.ok, result.violations
        # The product structure holds at full scale too.
        single = check_config(VerifyConfig(
            config.engine, config.protocol, num_procs=3, num_blocks=1,
        ), jobs=0)
        assert result.num_states == single.num_states ** 2
