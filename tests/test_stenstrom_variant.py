"""Tests for the Stenström et al. protocol variant (Section 5)."""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.directory.entry import DirState
from repro.directory.policy import BASIC, STENSTROM
from repro.directory.protocol import DirectoryProtocol
from repro.experiments import common
from repro.system.machine import DirectoryMachine
from repro.verification.space import explore_directory

B = 3


def make_migratory(protocol):
    protocol.write_miss(B, 0, dirty=False)
    protocol.read_miss(B, 1, dirty=True)
    protocol.write_hit(B, 1, sole_copy=False)
    assert protocol.entry(B).state is DirState.ONE_COPY_MIG


class TestShiftRules:
    def test_shift_in_rule_identical(self):
        """Both protocols classify via the same evidence."""
        for policy in (BASIC, STENSTROM):
            protocol = DirectoryProtocol(policy)
            make_migratory(protocol)

    def test_both_demote_on_clean_read_miss(self):
        for policy in (BASIC, STENSTROM):
            protocol = DirectoryProtocol(policy)
            make_migratory(protocol)
            protocol.read_miss(B, 2, dirty=False)
            assert protocol.entry(B).state is DirState.TWO_COPIES, policy

    def test_only_stenstrom_demotes_on_dirty_write_miss(self):
        """The one rule difference the paper identifies."""
        cox = DirectoryProtocol(BASIC)
        make_migratory(cox)
        cox.write_miss(B, 2, dirty=True)
        assert cox.entry(B).state is DirState.ONE_COPY_MIG

        sten = DirectoryProtocol(STENSTROM)
        make_migratory(sten)
        sten.write_miss(B, 2, dirty=True)
        assert sten.entry(B).state is DirState.ONE_COPY

    def test_exhaustively_safe(self):
        result = explore_directory(STENSTROM)
        assert result.ok, result.violations


class TestConsistencyWithBasic:
    def test_results_consistent_on_splash_analogues(self):
        """Section 5: "our dixie simulations are consistent with their
        results" — little dynamic reclassification, near-equal counts."""
        common.clear_caches()
        for app in ("mp3d", "pthor"):
            trace = common.get_trace(app, num_procs=8, seed=0, scale=0.25)
            cfg = MachineConfig(
                num_procs=8,
                cache=CacheConfig(size_bytes=None, block_size=16),
            )
            basic = DirectoryMachine(cfg, BASIC, check=True)
            basic.run(trace)
            sten = DirectoryMachine(cfg, STENSTROM, check=True)
            sten.run(trace)
            ratio = sten.stats.total / basic.stats.total
            assert ratio == pytest.approx(1.0, abs=0.02), app
