"""The single-block explorer: safety matrix, structural theorems, and
an abstraction-drift cross-check against the real machines.

:mod:`repro.verification.space` claims (in its docstring) that every
shipped protocol's reachable space satisfies the copy invariants and
that the paper's structural remarks hold as theorems over the model.
This module turns both claims into a parametrized matrix over *every*
snooping protocol and directory policy, then closes the loop with a
randomized property test: replay short random traces on the concrete
machines and assert that every intermediate global state, projected
through the explorer's abstraction, is a member of the explored
reachable set.  If the abstraction ever drifts from the engines (a new
field the projection ignores, a transition the explorer's action set
misses), the membership check fails before any invariant does.
"""

import random

import pytest

from repro.protocols import registry as families
from repro.snooping.machine import BusMachine
from repro.verification.space import (
    _dir_extract,
    _snoop_config,
    _snoop_extract,
    directory_states_seen,
    explore_directory,
    explore_snooping,
)

from repro.verification.model import SNOOP_PROTOCOLS

DIR_FAMILIES = list(families.directory_families())

SNOOP_IDS = list(SNOOP_PROTOCOLS)
POLICY_IDS = [fam.name for fam in DIR_FAMILIES]


class TestSnoopingMatrix:
    @pytest.mark.parametrize("name", SNOOP_IDS)
    def test_closure_has_zero_violations(self, name):
        result = explore_snooping(SNOOP_PROTOCOLS[name])
        assert result.ok, result.violations
        assert len(result.states) > 1

    @pytest.mark.parametrize("name", SNOOP_IDS)
    def test_closure_with_evictions_has_zero_violations(self, name):
        result = explore_snooping(SNOOP_PROTOCOLS[name],
                                  with_evictions=True)
        assert result.ok, result.violations

    def test_exclusive_reachable_under_default_protocols(self):
        # Paper S3: with migrate-on-read-miss *off*, a first read miss
        # fills Exclusive; E must appear in the reachable space.
        for name in ("mesi", "adaptive"):
            result = explore_snooping(SNOOP_PROTOCOLS[name])
            assert "E" in result.line_states_seen(), name

    def test_exclusive_unreachable_under_initial_migratory(self):
        # Paper S3: with migrate-on-read-miss as the initial policy the
        # Exclusive state has no in-transitions — a dead state.
        result = explore_snooping(
            SNOOP_PROTOCOLS["adaptive-initial-migratory"]
        )
        assert "E" not in result.line_states_seen()
        assert "MC" in result.line_states_seen()


class TestDirectoryMatrix:
    @pytest.mark.parametrize("family", DIR_FAMILIES, ids=POLICY_IDS)
    def test_closure_has_zero_violations(self, family):
        result = explore_directory(
            family.policy, machine_cls=family.machine_class()
        )
        assert result.ok, result.violations
        assert len(result.states) > 1

    @pytest.mark.parametrize("family", DIR_FAMILIES, ids=POLICY_IDS)
    def test_closure_with_evictions_has_zero_violations(self, family):
        result = explore_directory(
            family.policy, with_evictions=True,
            machine_cls=family.machine_class(),
        )
        assert result.ok, result.violations

    def test_migratory_directory_states_need_adaptivity(self):
        # Non-adaptive policies never classify, so the migratory
        # directory states are unreachable under them and reachable
        # under every adaptive policy.
        for family in DIR_FAMILIES:
            seen = directory_states_seen(explore_directory(
                family.policy, machine_cls=family.machine_class()
            ))
            if family.policy.adaptive:
                assert "ONE_COPY_MIG" in seen, family.name
            else:
                assert "ONE_COPY_MIG" not in seen, family.name


class TestAbstractionCrossCheck:
    """Random concrete replays stay inside the explored reachable set."""

    NUM_PROCS = 3
    TRIALS = 8
    OPS = 40

    def _random_accesses(self, rng):
        # Same-block addresses only: the explorer models exactly one
        # block (16-byte lines -> word addresses 0/4/8/12).
        for _ in range(self.OPS):
            yield (rng.randrange(self.NUM_PROCS),
                   rng.random() < 0.5,
                   rng.choice((0, 4, 8, 12)))

    @pytest.mark.parametrize("name", SNOOP_IDS)
    def test_snooping_replays_stay_in_reachable_set(self, name):
        reachable = explore_snooping(
            SNOOP_PROTOCOLS[name], num_procs=self.NUM_PROCS
        ).states
        for trial in range(self.TRIALS):
            rng = random.Random(f"space-cross:{name}:{trial}")
            machine = BusMachine(_snoop_config(self.NUM_PROCS),
                                 SNOOP_PROTOCOLS[name]())
            for proc, is_write, addr in self._random_accesses(rng):
                machine.access(proc, is_write, addr)
                state = _snoop_extract(machine)
                assert state in reachable, (
                    f"{name} trial {trial}: concrete state {state} "
                    f"escaped the explored space"
                )

    @pytest.mark.parametrize("family", DIR_FAMILIES, ids=POLICY_IDS)
    def test_directory_replays_stay_in_reachable_set(self, family):
        policy = family.policy
        reachable = explore_directory(
            policy, num_procs=self.NUM_PROCS,
            machine_cls=family.machine_class(),
        ).states
        for trial in range(self.TRIALS):
            rng = random.Random(f"space-cross:{policy.name}:{trial}")
            machine = family.machine_class()(
                _snoop_config(self.NUM_PROCS), policy
            )
            for proc, is_write, addr in self._random_accesses(rng):
                machine.access(proc, is_write, addr)
                state = _dir_extract(machine)
                assert state in reachable, (
                    f"{policy.name} trial {trial}: concrete state "
                    f"{state} escaped the explored space"
                )
