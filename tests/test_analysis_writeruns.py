"""Tests for write-run analysis."""

import pytest

from repro.analysis.writeruns import (
    WriteRunStats,
    render_write_runs,
    write_run_stats,
)
from repro.common.types import read, write
from repro.trace import synth
from repro.trace.core import Trace


class TestWriteRuns:
    def test_single_run(self):
        trace = Trace([write(0, 0), write(0, 4), write(0, 8)])
        stats = write_run_stats(trace)
        assert stats.run_lengths == [3]
        assert stats.external_rereads == []

    def test_own_reads_do_not_break_run(self):
        trace = Trace([write(0, 0), read(0, 4), write(0, 8), write(0, 0)])
        stats = write_run_stats(trace)
        assert stats.run_lengths == [3]

    def test_other_read_ends_run(self):
        trace = Trace([write(0, 0), write(0, 4), read(1, 0), write(0, 8)])
        stats = write_run_stats(trace)
        assert stats.run_lengths == [2, 1]

    def test_other_write_ends_run(self):
        trace = Trace([write(0, 0), write(1, 0), write(0, 0)])
        stats = write_run_stats(trace)
        assert stats.run_lengths == [1, 1, 1]

    def test_external_rereads_counted_per_run_transition(self):
        trace = Trace([
            write(0, 0),
            read(1, 0), read(2, 0), read(1, 0),  # two distinct consumers
            write(3, 0),
        ])
        stats = write_run_stats(trace)
        assert stats.external_rereads == [2]

    def test_next_owner_read_is_external(self):
        trace = Trace([write(0, 0), read(1, 0), write(1, 0)])
        stats = write_run_stats(trace)
        # P1 consumed P0's data before starting its own run: the
        # migratory signature of exactly one external re-read.
        assert stats.external_rereads == [1]

    def test_previous_writer_reread_not_external(self):
        trace = Trace([write(0, 0), read(1, 0), read(0, 0), write(2, 0)])
        stats = write_run_stats(trace)
        # P0 re-reading its own data does not count; P1 does.
        assert stats.external_rereads == [1]

    def test_blocks_independent(self):
        # the write to block 1 does not break block 0's run
        trace = Trace([write(0, 0), write(1, 16), write(0, 4)])
        stats = write_run_stats(trace, block_size=16)
        assert sorted(stats.run_lengths) == [1, 2]

    def test_means(self):
        stats = WriteRunStats(run_lengths=[1, 3], external_rereads=[2])
        assert stats.mean_run_length == 2.0
        assert stats.mean_external_rereads == 2.0
        assert WriteRunStats().mean_run_length == 0.0
        assert WriteRunStats().mean_external_rereads == 0.0

    def test_histogram(self):
        stats = WriteRunStats(run_lengths=[1, 1, 2, 5, 100])
        hist = stats.histogram(buckets=(1, 2, 4))
        assert hist == {1: 2, 2: 1, 4: 0, "more": 2}


class TestPatternSignatures:
    def test_migratory_has_single_external_consumer(self):
        trace = synth.migratory(num_procs=8, num_objects=2, visits=40,
                                reads_per_visit=2, writes_per_visit=2,
                                seed=1)
        stats = write_run_stats(trace)
        # each visit's reads come from exactly the next writer
        assert stats.mean_external_rereads == pytest.approx(1.0)

    def test_producer_consumer_has_many_external_consumers(self):
        trace = synth.producer_consumer(num_procs=8, num_objects=2,
                                        rounds=20, consumers=4, seed=2)
        stats = write_run_stats(trace)
        assert stats.mean_external_rereads > 2.0

    def test_private_runs_are_long(self):
        trace = Trace([write(0, 0)] * 50)
        stats = write_run_stats(trace)
        assert stats.mean_run_length == 50.0


def test_render():
    stats = {"demo": WriteRunStats(run_lengths=[2, 2],
                                   external_rereads=[1])}
    text = render_write_runs(stats, "Write runs")
    assert "demo" in text and "mean length" in text
