"""Tests for the shared-bus contention simulator."""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import read, write
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import (
    AdaptiveSnoopingProtocol,
    AlwaysMigrateProtocol,
    MesiProtocol,
)
from repro.timing.bus_eventsim import BusEventSimulator, BusTimingParams
from repro.trace import synth
from repro.trace.core import Trace

PARAMS = BusTimingParams(hit_cycles=1, bus_cycles=10,
                         compute_cycles_per_ref=0)


def machine(protocol=None, procs=4):
    cfg = MachineConfig(num_procs=procs, cache=CacheConfig(size_bytes=None))
    return BusMachine(cfg, protocol or MesiProtocol())


class TestBasics:
    def test_miss_occupies_bus(self):
        sim = BusEventSimulator(machine(), PARAMS)
        result = sim.run(Trace([read(0, 0), read(0, 0)]))
        assert result.per_proc_cycles[0] == 10 + 1
        assert result.bus_busy_cycles == 10
        assert result.transactions == 1

    def test_concurrent_misses_serialize(self):
        sim = BusEventSimulator(machine(), PARAMS)
        result = sim.run(Trace([read(0, 0), read(1, 64), read(2, 128)]))
        # three transactions, back to back on one bus
        assert result.bus_busy_cycles == 30
        assert result.queue_wait_cycles == 10 + 20

    def test_busy_by_kind_partitions_busy_cycles(self):
        trace = synth.migratory(num_procs=4, num_objects=2, visits=20,
                                seed=3)
        sim = BusEventSimulator(machine(), PARAMS)
        result = sim.run(trace)
        assert sum(result.busy_by_kind.values()) == result.bus_busy_cycles

    def test_utilization_bounds(self):
        trace = synth.migratory(num_procs=4, num_objects=2, visits=20,
                                seed=3)
        result = BusEventSimulator(machine(), PARAMS).run(trace)
        assert 0.0 < result.utilization <= 1.0

    def test_hits_do_not_touch_bus(self):
        sim = BusEventSimulator(machine(), PARAMS)
        result = sim.run(Trace([write(0, 0), write(0, 0), read(0, 4)]))
        assert result.transactions == 1  # only the initial write miss


class TestProtocolContrast:
    @pytest.fixture(scope="class")
    def migratory_trace(self):
        return synth.migratory(num_procs=4, num_objects=4, visits=50,
                               reads_per_visit=2, writes_per_visit=2, seed=9)

    def test_adaptive_lowers_utilization(self, migratory_trace):
        mesi = BusEventSimulator(machine(MesiProtocol()), PARAMS).run(
            migratory_trace
        )
        adaptive = BusEventSimulator(
            machine(AdaptiveSnoopingProtocol()), PARAMS
        ).run(migratory_trace)
        assert adaptive.bus_busy_cycles < mesi.bus_busy_cycles
        assert adaptive.execution_time < mesi.execution_time
        assert adaptive.queue_wait_cycles <= mesi.queue_wait_cycles

    def test_thakkar_read_cycles_dominate_always_migrate(self):
        """Section 5 quotes Thakkar: read cycles dominate Sequent bus
        traffic, inflated by the migrate-on-read-miss policy's extra
        read misses on non-migratory data."""
        trace = synth.interleave(
            [
                synth.read_shared(num_procs=4, num_objects=4, rounds=25,
                                  seed=4),
                synth.migratory(num_procs=4, num_objects=2, visits=25,
                                base=1 << 16, seed=5),
            ],
            chunk=4,
            seed=6,
        )
        always = BusEventSimulator(
            machine(AlwaysMigrateProtocol()), PARAMS
        ).run(trace)
        adaptive = BusEventSimulator(
            machine(AdaptiveSnoopingProtocol()), PARAMS
        ).run(trace)
        assert always.kind_share("read_miss") > 0.5
        assert (
            always.busy_by_kind["read_miss"]
            > adaptive.busy_by_kind["read_miss"]
        )


class TestBusContentionExperiment:
    def test_shapes(self):
        from repro.experiments import common, contention

        common.clear_caches()
        rows = contention.run_bus(apps=("water",), scale=0.25, num_procs=8)
        row = rows[0]
        assert 0 < row.adaptive_utilization <= row.mesi_utilization
        assert row.adaptive_exec <= row.mesi_exec
        assert "utilization" in contention.render_bus(rows)
