"""Integration tests for the experiment harness (small scales).

These run every experiment end-to-end at reduced scale and assert the
paper's qualitative claims, making the reproduction executable.
"""

import pytest

from repro.experiments import (
    ablations,
    bus,
    common,
    cost_ratio,
    exec_time,
    fig2,
    placement,
    table2,
    table3,
)

SCALE = 0.25
PROCS = 8


@pytest.fixture(autouse=True, scope="module")
def _fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


class TestFig2Conformance:
    def test_derived_tables_match_paper(self):
        assert fig2.conformance_mismatches() == []

    def test_render_contains_both_tables(self):
        text = fig2.render()
        assert "local cache events" in text
        assert "bus requests" in text
        assert "MD" in text and "S2" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2.run(
            apps=("mp3d", "locusroute"),
            cache_sizes=(4096, 65536),
            scale=SCALE,
            num_procs=PROCS,
        )

    def test_row_grid_complete(self, rows):
        assert len(rows) == 4
        assert {r.app for r in rows} == {"mp3d", "locusroute"}

    def test_all_protocols_present(self, rows):
        for row in rows:
            assert set(row.cells) == {
                "conventional", "conservative", "basic", "aggressive",
            }

    def test_adaptive_reduces_messages(self, rows):
        for row in rows:
            conv = row.cells["conventional"].total
            for name in ("conservative", "basic", "aggressive"):
                assert row.cells[name].total <= conv, (row.app, name)

    def test_aggressive_beats_conservative(self, rows):
        for row in rows:
            assert (
                row.cells["aggressive"].reduction_pct
                >= row.cells["conservative"].reduction_pct - 1.0
            )

    def test_data_messages_nearly_constant(self, rows):
        """Adaptation removes protocol messages, not data transfers."""
        for row in rows:
            conv = row.cells["conventional"].data
            aggr = row.cells["aggressive"].data
            assert aggr <= conv * 1.10

    def test_render(self, rows):
        text = table2.render(rows)
        assert "Table 2" in text
        assert "mp3d" in text and "4 Kbyte" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3.run(
            apps=("mp3d", "cholesky"),
            block_sizes=(16, 64, 256),
            scale=SCALE,
            num_procs=PROCS,
        )

    def test_message_counts_fall_with_block_size(self, rows):
        """Spatially local apps (Cholesky's column scans) need fewer
        messages at larger blocks."""
        conv = [r.cells["conventional"].total for r in rows
                if r.app == "cholesky"]
        assert conv[0] > conv[-1]

    def test_mp3d_invalidations_rise_with_block_size(self, rows):
        """The paper notes MP3D's traffic grows with block size as false
        sharing makes the data ping-pong."""
        conv = [r.cells["conventional"].total for r in rows
                if r.app == "mp3d"]
        assert conv[-1] > conv[0]

    def test_savings_erode_at_large_blocks(self, rows):
        """False sharing swallows migratory data at 256-byte blocks."""
        for app in ("mp3d", "cholesky"):
            by_block = {r.block_size: r.cells["aggressive"].reduction_pct
                        for r in rows if r.app == app}
            assert by_block[256] < by_block[16], app

    def test_render(self, rows):
        text = table3.render(rows)
        assert "Table 3" in text and "256-byte" in text


class TestCostRatio:
    def test_savings_shrink_with_data_weight(self):
        rows = cost_ratio.run(
            apps=("mp3d",), scale=SCALE, num_procs=PROCS,
            cache_size=None,
        )
        aggressive = [r for r in rows if r.policy == "aggressive"][0]
        s = aggressive.savings_by_model
        assert s["1:1"] > s["2:1"] > s["4:1"]

    def test_render(self):
        rows = cost_ratio.run(apps=("mp3d",), scale=SCALE, num_procs=PROCS,
                              cache_size=None)
        assert "cost-ratio" in cost_ratio.render(rows)


class TestExecTime:
    def test_adaptive_reduces_execution_time(self):
        rows = exec_time.run(apps=("mp3d",), cache_size=16 * 1024,
                             scale=SCALE, num_procs=PROCS)
        assert rows[0].time_reduction_pct > 0
        assert rows[0].adaptive_cycles < rows[0].base_cycles

    def test_render(self):
        rows = exec_time.run(apps=("mp3d",), cache_size=16 * 1024,
                             scale=SCALE, num_procs=PROCS)
        assert "execution time" in exec_time.render(rows)


class TestPlacement:
    def test_round_robin_inflates_messages(self):
        rows = placement.run(apps=("mp3d",), cache_size=2048,
                             scale=SCALE, num_procs=PROCS)
        by_kind = {r.placement: r for r in rows}
        assert (
            by_kind["round_robin"].conventional_total
            > by_kind["best_static"].conventional_total
        )

    def test_render(self):
        rows = placement.run(apps=("mp3d",), cache_size=2048,
                             scale=SCALE, num_procs=PROCS)
        assert "placement" in placement.render(rows)


class TestBus:
    @pytest.fixture(scope="class")
    def rows(self):
        return bus.run(apps=("mp3d", "locusroute"),
                       cache_sizes=(16 * 1024,),
                       scale=SCALE, num_procs=PROCS)

    def test_adaptive_saves_transactions(self, rows):
        for row in rows:
            assert row.adaptive_model1 <= row.mesi_model1

    def test_model2_saves_less_than_model1(self, rows):
        for row in rows:
            assert row.model2_saving_pct <= row.model1_saving_pct + 1e-9

    def test_always_migrate_best_on_migratory_app(self, rows):
        mp3d = [r for r in rows if r.app == "mp3d"][0]
        assert mp3d.always_migrate_model1 <= mp3d.adaptive_model1

    def test_render(self, rows):
        assert "bus transaction" in bus.render(rows)


class TestAblations:
    def test_hysteresis_monotone_near_threshold_one(self):
        rows = ablations.hysteresis_sweep(
            apps=("mp3d",), thresholds=(1, 2, 4), cache_size=None,
            scale=SCALE, num_procs=PROCS,
        )
        by_variant = {r.variant: r.total for r in rows}
        assert by_variant["threshold-1"] <= by_variant["threshold-2"]
        assert by_variant["threshold-2"] <= by_variant["threshold-4"]
        assert by_variant["threshold-4"] <= by_variant["conventional"]

    def test_remembering_beats_forgetting_with_small_caches(self):
        rows = ablations.uncached_memory(
            apps=("mp3d",), cache_size=1024, scale=SCALE, num_procs=PROCS
        )
        by_variant = {r.variant: r.total for r in rows}
        assert by_variant["remember"] <= by_variant["forget"]

    def test_eviction_notification_rows(self):
        rows = ablations.eviction_notifications(
            apps=("mp3d",), cache_size=2048, scale=SCALE, num_procs=PROCS
        )
        assert {r.variant for r in rows} == {"notify", "silent-drop"}

    def test_render(self):
        rows = ablations.hysteresis_sweep(
            apps=("mp3d",), thresholds=(1,), cache_size=None,
            scale=SCALE, num_procs=PROCS,
        )
        assert "A1" in ablations.render(rows, "A1: hysteresis")


class TestCommonHelpers:
    def test_trace_cache_reuses(self):
        a = common.get_trace("mp3d", PROCS, 0, SCALE)
        b = common.get_trace("mp3d", PROCS, 0, SCALE)
        assert a is b

    def test_make_cell_reduction(self):
        from repro.common.stats import MessageStats

        s = MessageStats()
        s.charge("m", 30, 20)
        cell = common.make_cell(s, baseline_total=100)
        assert cell.total == 50
        assert cell.reduction_pct == pytest.approx(50.0)
