"""Failure paths of the on-disk trace cache.

The cache must be an invisible accelerator: corrupted files, torn
writes, and a read-only or disabled cache all degrade to rebuilding the
trace, never to wrong results or crashes.
"""

import pytest

from repro.trace import diskcache, synth
from repro.trace.packed import PackedTrace


class CountingBuilder:
    """A stand-in workload builder that counts invocations."""

    def __init__(self):
        self.calls = 0

    def __call__(self, app, num_procs, seed, scale):
        self.calls += 1
        return synth.migratory(
            num_procs=num_procs, num_objects=2, visits=4, seed=seed
        )


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    return tmp_path


def build(builder):
    return diskcache.load_or_build("synthapp", 4, 0, 1.0, builder)


class TestHappyPath:
    def test_second_load_hits_cache(self, cache_env):
        builder = CountingBuilder()
        first = build(builder)
        second = build(builder)
        assert builder.calls == 1
        assert list(first) == list(second)
        assert len(list(cache_env.glob("*.ptrace"))) == 1


class TestCorruption:
    def test_garbage_file_rebuilds(self, cache_env):
        builder = CountingBuilder()
        path = diskcache.cache_path("synthapp", 4, 0, 1.0)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"this is not a packed trace")
        trace = build(builder)
        assert builder.calls == 1  # fell back to the builder
        assert list(trace) == list(build(CountingBuilder()))
        # ...and the rebuild repaired the cache entry in place.
        assert list(PackedTrace.load(path).to_trace()) == list(trace)

    def test_truncated_file_rebuilds(self, cache_env):
        builder = CountingBuilder()
        build(builder)
        path = diskcache.cache_path("synthapp", 4, 0, 1.0)
        good = path.read_bytes()
        path.write_bytes(good[: len(good) // 2])  # torn write
        again = build(builder)
        assert builder.calls == 2
        assert list(again) == list(build(CountingBuilder()))

    def test_empty_file_rebuilds(self, cache_env):
        builder = CountingBuilder()
        path = diskcache.cache_path("synthapp", 4, 0, 1.0)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"")
        build(builder)
        assert builder.calls == 1


class TestDisabled:
    @pytest.mark.parametrize("value", ["off", "0", "no", "disabled"])
    def test_disable_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE_CACHE", value)
        assert diskcache.cache_dir() is None
        assert diskcache.cache_path("synthapp", 4, 0, 1.0) is None

    def test_disabled_cache_always_builds(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        builder = CountingBuilder()
        first = build(builder)
        second = build(builder)
        assert builder.calls == 2
        assert list(first) == list(second)

    def test_clear_with_cache_off_is_noop(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert diskcache.clear() == 0


class TestBestEffortWrites:
    def test_failed_store_is_silent_and_leaves_no_artifact(
        self, cache_env, monkeypatch
    ):
        def broken_save(self, path):
            raise OSError("disk full")

        monkeypatch.setattr(PackedTrace, "save", broken_save)
        builder = CountingBuilder()
        trace = build(builder)  # must not raise
        assert builder.calls == 1
        assert len(trace) > 0
        # No cache entry and no leaked temporary file.
        assert list(cache_env.iterdir()) == []

    def test_store_failure_does_not_poison_later_loads(
        self, cache_env, monkeypatch
    ):
        real_save = PackedTrace.save

        def broken_save(self, path):
            raise OSError("disk full")

        monkeypatch.setattr(PackedTrace, "save", broken_save)
        build(CountingBuilder())
        monkeypatch.setattr(PackedTrace, "save", real_save)
        builder = CountingBuilder()
        first = build(builder)   # builds and stores successfully now
        second = build(builder)  # served from the repaired cache
        assert builder.calls == 1
        assert list(first) == list(second)


class TestClear:
    def test_clear_counts_removed_entries(self, cache_env):
        for seed in range(3):
            diskcache.load_or_build("synthapp", 4, seed, 1.0,
                                    CountingBuilder())
        assert diskcache.clear() == 3
        assert diskcache.clear() == 0
