"""Tests for trace-level statistics and reuse distances."""

import pytest

from repro.analysis.tracestats import (
    render_trace_summaries,
    reuse_distances,
    reuse_histogram,
    summarize_trace,
)
from repro.common.types import read, write
from repro.trace.core import Trace


class TestSummaries:
    def test_basic_counts(self):
        trace = Trace([read(0, 0), write(0, 16), read(1, 0), read(1, 32)])
        summary = summarize_trace(trace, block_size=16)
        assert summary.references == 4
        assert summary.write_fraction == pytest.approx(0.25)
        assert summary.num_procs == 2
        assert summary.blocks_touched == 3

    def test_balance(self):
        balanced = Trace([read(p, p * 64) for p in range(4)] * 5)
        assert summarize_trace(balanced).balanced
        skewed = Trace(
            [read(0, 0)] * 20 + [read(p, p * 64) for p in (1, 2, 3)]
        )
        assert not summarize_trace(skewed).balanced

    def test_empty(self):
        summary = summarize_trace(Trace())
        assert summary.references == 0
        assert summary.balanced


class TestReuseDistances:
    def test_immediate_reuse_distance_zero(self):
        trace = Trace([read(0, 0), read(0, 4)])  # same block, back to back
        assert reuse_distances(trace, 16) == [0]

    def test_intervening_blocks_counted_distinctly(self):
        trace = Trace([
            read(0, 0),       # block 0
            read(0, 16),      # block 1
            read(0, 32),      # block 2
            read(0, 16),      # block 1 again (distance 1: only block 2)
            read(0, 0),       # block 0 again (distance 2: blocks 1,2)
        ])
        assert reuse_distances(trace, 16) == [1, 2]

    def test_first_references_excluded(self):
        trace = Trace([read(0, i * 16) for i in range(5)])
        assert reuse_distances(trace, 16) == []

    def test_per_processor_streams_independent(self):
        trace = Trace([read(0, 0), read(1, 16), read(0, 0)])
        # P1's access does not intervene in P0's private stream
        assert reuse_distances(trace, 16, per_processor=True) == [0]
        assert reuse_distances(trace, 16, per_processor=False) == [1]

    def test_histogram_buckets(self):
        hist = reuse_histogram([0, 3, 5, 100, 5000], buckets=(0, 4, 16))
        assert hist == {0: 1, 4: 1, 16: 1, "more": 2}

    def test_larger_cache_covers_more_reuses(self):
        """The fully-associative intuition the module docstring states."""
        from repro.trace import synth

        trace = synth.migratory(num_procs=4, num_objects=32, visits=10,
                                seed=3)
        distances = reuse_distances(trace, 16)
        small_hits = sum(1 for d in distances if d < 8)
        large_hits = sum(1 for d in distances if d < 64)
        assert large_hits >= small_hits


def test_render():
    named = {"demo": Trace([read(0, 0), write(1, 16)])}
    text = render_trace_summaries(named)
    assert "demo" in text and "write %" in text
