"""Shared test configuration.

The replay result cache (:mod:`repro.experiments.resultcache`) is
redirected to a session-private temporary directory: the tests exercise
the replays themselves, and a stale entry left in the user's
``~/.cache/repro/results`` by an earlier (differently-coded) run could
mask a real replay.  The *trace* cache stays shared — traces are pure
functions of their ``(app, num_procs, seed, scale)`` key, and rebuilding
them would only slow the suite down.

The variable is set in ``os.environ`` directly (not per-test
monkeypatching) so the spawned worker processes of the parallel-harness
tests inherit it too.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    previous = os.environ.get("REPRO_RESULT_CACHE")
    os.environ["REPRO_RESULT_CACHE"] = str(
        tmp_path_factory.mktemp("result-cache")
    )
    yield
    if previous is None:
        os.environ.pop("REPRO_RESULT_CACHE", None)
    else:
        os.environ["REPRO_RESULT_CACHE"] = previous
