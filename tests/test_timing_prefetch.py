"""Tests for the prefetching timing model and its experiment."""

import pytest

from repro.analysis.oracle import read_exclusive_hints
from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import read, write
from repro.directory.policy import BASIC, CONVENTIONAL
from repro.system.machine import DirectoryMachine
from repro.timing.prefetch import PrefetchingTimingSimulator
from repro.timing.sim import TimingParams, TimingSimulator
from repro.trace import synth
from repro.trace.core import Trace

PARAMS = TimingParams(hit_cycles=1, memory_cycles=20, message_cycles=10,
                      compute_cycles_per_ref=0)


def machine(policy=CONVENTIONAL):
    cfg = MachineConfig(
        num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
    )
    return DirectoryMachine(cfg, policy)


class TestPrefetchingSimulator:
    def test_covered_miss_costs_issue_overhead(self):
        sim = PrefetchingTimingSimulator(machine(), PARAMS, coverage=1.0,
                                         issue_cycles=3)
        result = sim.run(Trace([read(1, 0)]))  # remote miss, prefetched
        assert result.per_proc_cycles[1] == 1 + 3

    def test_zero_coverage_matches_plain_simulator(self):
        trace = synth.migratory(num_procs=4, num_objects=2, visits=20, seed=4)
        plain = TimingSimulator(machine(), PARAMS).run(trace)
        uncovered = PrefetchingTimingSimulator(
            machine(), PARAMS, coverage=0.0
        ).run(trace)
        assert uncovered.execution_time == plain.execution_time

    def test_messages_unchanged_by_prefetching(self):
        """Prefetching tolerates latency; it does not remove traffic."""
        trace = synth.migratory(num_procs=4, num_objects=2, visits=20, seed=4)
        m1 = machine()
        TimingSimulator(m1, PARAMS).run(trace)
        m2 = machine()
        PrefetchingTimingSimulator(m2, PARAMS, coverage=1.0).run(trace)
        assert m2.stats.snapshot() == m1.stats.snapshot()

    def test_partial_coverage_between_extremes(self):
        trace = synth.migratory(num_procs=4, num_objects=2, visits=30, seed=4)
        times = {}
        for coverage in (0.0, 0.5, 1.0):
            sim = PrefetchingTimingSimulator(machine(), PARAMS,
                                             coverage=coverage, seed=1)
            times[coverage] = sim.run(trace).execution_time
        assert times[1.0] < times[0.5] < times[0.0]

    def test_invalid_coverage_rejected(self):
        with pytest.raises(ValueError):
            PrefetchingTimingSimulator(machine(), PARAMS, coverage=1.5)

    def test_exclusive_hints_remove_upgrade_stalls(self):
        """prefetch-exclusive also removes the write-hit invalidation
        wait by fetching ownership up front."""
        trace = Trace([read(1, 0), write(1, 0), read(2, 0), write(2, 0)])
        hints = read_exclusive_hints(list(trace), block_size=16)
        plain = PrefetchingTimingSimulator(machine(), PARAMS, coverage=1.0)
        t_plain = plain.run(trace)
        excl = PrefetchingTimingSimulator(machine(), PARAMS, coverage=1.0)
        t_excl = excl.run(trace, exclusive_hints=hints)
        assert t_excl.execution_time < t_plain.execution_time


class TestPrefetchExperiment:
    def test_shapes(self):
        from repro.experiments import common, prefetch

        common.clear_caches()
        rows = prefetch.run(apps=("mp3d",), scale=0.25, num_procs=8)
        row = rows[0]
        base = row.conventional
        # everything beats the baseline
        assert row.adaptive < base
        assert row.prefetch < base
        # prefetching hides read-miss latency the adaptive protocol
        # cannot, and prefetch-exclusive is at least as good as prefetch
        assert row.prefetch < row.adaptive
        assert row.prefetch_exclusive <= row.prefetch
        text = prefetch.render(rows)
        assert "prefetch" in text
