"""Tests for the write-update and competitive-update protocols.

These make the paper's two claims about update-based protocols
executable: pure write-update communicates on *every* write to shared
data, and the Alpha-style hybrid takes three inter-cache operations to
migrate a block.
"""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import AdaptiveSnoopingProtocol, MesiProtocol
from repro.snooping.states import SnoopState as St
from repro.snooping.update_protocols import (
    CompetitiveUpdateProtocol,
    WriteUpdateProtocol,
)
from repro.trace import synth


def bus(protocol, procs=4, size=None):
    cfg = MachineConfig(num_procs=procs, cache=CacheConfig(size_bytes=size))
    return BusMachine(cfg, protocol, check=True)


def state(machine, proc, block=0):
    line = machine.caches[proc].lookup(block)
    return None if line is None else line.state


class TestWriteUpdate:
    def test_update_keeps_copies_valid(self):
        m = bus(WriteUpdateProtocol())
        m.access(0, False, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)  # update broadcast
        assert state(m, 0) is St.S and state(m, 1) is St.S
        assert m.bus_stats.update == 1
        # P0 can still read without a miss.
        before = m.bus_stats.total
        m.access(0, False, 0)
        assert m.bus_stats.total == before

    def test_every_shared_write_broadcasts(self):
        m = bus(WriteUpdateProtocol())
        m.access(0, False, 0)
        m.access(1, False, 0)
        for _ in range(10):
            m.access(1, True, 0)
        assert m.bus_stats.update == 10

    def test_sole_copy_writes_silently(self):
        m = bus(WriteUpdateProtocol())
        m.access(0, False, 0)  # E
        before = m.bus_stats.total
        m.access(0, True, 0)
        assert m.bus_stats.total == before
        assert state(m, 0) is St.D

    def test_update_to_lone_writer_promotes_to_exclusive(self):
        m = bus(CompetitiveUpdateProtocol(threshold=0))
        m.access(0, False, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)  # threshold 0: P0's copy dies immediately
        assert state(m, 0) is None
        assert state(m, 1) is St.E
        before = m.bus_stats.total
        m.access(1, True, 0)  # now silent
        assert m.bus_stats.total == before

    def test_reads_stay_coherent_under_updates(self):
        """The version checker validates update propagation."""
        m = bus(WriteUpdateProtocol())
        trace = synth.producer_consumer(num_procs=4, num_objects=2,
                                        rounds=20, consumers=3, seed=6)
        m.run(trace)  # checker raises on stale reads

    def test_write_update_loses_badly_on_migratory_data(self):
        """The introduction's argument for starting from write-invalidate."""
        trace = synth.migratory(num_procs=4, num_objects=4, visits=50,
                                reads_per_visit=1, writes_per_visit=4, seed=7)
        update = bus(WriteUpdateProtocol())
        update.run(trace)
        invalidate = bus(MesiProtocol())
        invalidate.run(trace)
        adaptive = bus(AdaptiveSnoopingProtocol())
        adaptive.run(trace)
        assert update.bus_stats.total > invalidate.bus_stats.total
        assert invalidate.bus_stats.total > adaptive.bus_stats.total

    def test_write_update_wins_on_producer_consumer(self):
        """Update protocols exist for a reason: tight producer-consumer."""
        trace = synth.producer_consumer(num_procs=4, num_objects=4,
                                        words_per_object=2, rounds=40,
                                        consumers=3, seed=8)
        update = bus(WriteUpdateProtocol())
        update.run(trace)
        invalidate = bus(MesiProtocol())
        invalidate.run(trace)
        assert update.bus_stats.total < invalidate.bus_stats.total


class TestCompetitiveUpdate:
    def test_three_transactions_per_migration(self):
        """The paper's Alpha observation, reproduced exactly: read miss,
        one tolerated update, then the update that kills the stale copy."""
        m = bus(CompetitiveUpdateProtocol(threshold=1))
        m.access(0, True, 0)  # P0 owns the block
        base = m.bus_stats.total
        m.access(1, False, 0)  # 1: read miss replicates
        m.access(1, True, 0)  # 2: update (P0 counter -> 1, survives)
        m.access(1, True, 0)  # 3: update (P0 counter -> 2, dies)
        assert m.bus_stats.total - base == 3
        assert state(m, 0) is None
        assert state(m, 1) is St.E
        m.access(1, True, 0)  # silent now
        assert m.bus_stats.total - base == 3

    def test_local_access_resets_staleness(self):
        m = bus(CompetitiveUpdateProtocol(threshold=1))
        m.access(0, False, 0)
        m.access(1, False, 0)
        m.access(1, True, 0)  # P0 counter 1
        m.access(0, False, 0)  # P0 uses the data: counter reset
        m.access(1, True, 0)  # P0 counter 1 again, survives
        assert state(m, 0) is St.S

    def test_adaptive_beats_hybrid_on_migratory_data(self):
        """The quantitative version of the related-work comparison."""
        trace = synth.migratory(num_procs=4, num_objects=4, visits=60,
                                reads_per_visit=2, writes_per_visit=2, seed=9)
        hybrid = bus(CompetitiveUpdateProtocol(threshold=1))
        hybrid.run(trace)
        adaptive = bus(AdaptiveSnoopingProtocol())
        adaptive.run(trace)
        assert adaptive.bus_stats.total < hybrid.bus_stats.total

    def test_threshold_validation(self):
        from repro.common.errors import ProtocolError

        with pytest.raises(ProtocolError):
            CompetitiveUpdateProtocol(threshold=-1)

    def test_coherent_under_random_traffic(self):
        trace = synth.interleave(
            [
                synth.migratory(num_procs=4, num_objects=3, visits=30, seed=1),
                synth.read_shared(num_procs=4, num_objects=3, rounds=10,
                                  base=1 << 16, seed=2),
            ],
            chunk=4,
            seed=3,
        )
        m = bus(CompetitiveUpdateProtocol(threshold=2), size=256)
        m.run(trace)  # checker validates coherence throughout
