"""Unit tests for repro.common.types."""

import pytest

from repro.common.types import WORD_SIZE, Access, Op, read, write


class TestOp:
    def test_read_is_read(self):
        assert Op.READ.is_read
        assert not Op.READ.is_write

    def test_write_is_write(self):
        assert Op.WRITE.is_write
        assert not Op.WRITE.is_read

    def test_values_roundtrip(self):
        assert Op("R") is Op.READ
        assert Op("W") is Op.WRITE


class TestAccess:
    def test_constructors(self):
        r = read(3, 0x40)
        w = write(5, 0x80)
        assert r == Access(3, Op.READ, 0x40)
        assert w == Access(5, Op.WRITE, 0x80)

    def test_frozen(self):
        acc = read(0, 0)
        with pytest.raises(AttributeError):
            acc.addr = 4

    def test_str(self):
        assert str(read(2, 0x10)) == "P2 R 0x10"
        assert str(write(0, 0xFF)) == "P0 W 0xff"

    def test_hashable(self):
        assert len({read(0, 0), read(0, 0), write(0, 0)}) == 2

    def test_word_size(self):
        assert WORD_SIZE == 4
