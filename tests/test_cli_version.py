"""Tests for the shared ``--version`` plumbing across the CLIs."""

import pytest

from repro.common import version as version_mod
from repro.common.version import package_version


class TestPackageVersion:
    def test_reports_a_version_string(self):
        reported = package_version()
        assert reported
        assert reported[0].isdigit()

    def test_prefers_installed_metadata(self, monkeypatch):
        monkeypatch.setattr(
            version_mod.metadata, "version", lambda dist: "9.9.9"
        )
        assert package_version() == "9.9.9"

    def test_falls_back_to_source_tree(self, monkeypatch):
        def missing(dist):
            raise version_mod.metadata.PackageNotFoundError(dist)

        monkeypatch.setattr(version_mod.metadata, "version", missing)
        import repro

        assert package_version() == repro.__version__


def _cli_mains():
    from repro.conformance import cli as fuzz_cli
    from repro.experiments import runner
    from repro.service import cli as serve_cli
    from repro.service import client as client_cli
    from repro.service import loadgen
    from repro.telemetry import cli as stats_cli
    from repro.verification import cli as verify_cli

    return {
        "repro-experiments": runner.main,
        "repro-fuzz": fuzz_cli.main,
        "repro-stats": stats_cli.main,
        "repro-serve": serve_cli.main,
        "repro-verify": verify_cli.main,
        "service-client": client_cli.main,
        "loadgen": loadgen.main,
    }


@pytest.mark.parametrize("name", list(_cli_mains()))
def test_every_cli_answers_version(name, capsys):
    main = _cli_mains()[name]
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert package_version() in out
