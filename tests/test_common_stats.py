"""Unit tests for repro.common.stats."""

import pytest

from repro.common.stats import BusStats, CacheStats, MessageStats


class TestMessageStats:
    def test_charge_accumulates(self):
        s = MessageStats()
        s.charge("read_miss", 2, 1)
        s.charge("write_hit", 4, 0)
        assert s.short == 6
        assert s.data == 1
        assert s.total == 7
        assert s.by_cause_short["read_miss"] == 2
        assert s.by_cause_short["write_hit"] == 4
        assert s.by_cause_data["read_miss"] == 1

    def test_negative_rejected(self):
        s = MessageStats()
        with pytest.raises(ValueError):
            s.charge("x", -1, 0)

    def test_weighted_total(self):
        s = MessageStats()
        s.charge("m", 10, 5)
        assert s.weighted_total(1.0) == 15
        assert s.weighted_total(2.0) == 20
        assert s.weighted_total(4.0) == 30

    def test_byte_cost(self):
        s = MessageStats()
        s.charge("m", 10, 5)
        # one unit per message plus one unit per 16 bytes of data
        assert s.byte_cost(block_size=16) == 15 + 5 * 1.0
        assert s.byte_cost(block_size=64) == 15 + 5 * 4.0

    def test_merged(self):
        a = MessageStats()
        a.charge("x", 1, 2)
        b = MessageStats()
        b.charge("y", 3, 4)
        m = a.merged(b)
        assert (m.short, m.data) == (4, 6)
        assert m.by_cause_short == {"x": 1, "y": 3}
        # originals untouched
        assert a.snapshot() == (1, 2)

    def test_zero_charges_do_not_pollute_breakdown(self):
        s = MessageStats()
        s.charge("quiet", 0, 0)
        assert "quiet" not in s.by_cause_short
        assert "quiet" not in s.by_cause_data


class TestCacheStats:
    def test_rates(self):
        s = CacheStats(read_hits=6, read_misses=2, write_hits=1, write_misses=1)
        assert s.accesses == 10
        assert s.misses == 3
        assert s.miss_rate == pytest.approx(0.3)

    def test_empty_miss_rate(self):
        assert CacheStats().miss_rate == 0.0


class TestBusStats:
    def test_record_all_kinds(self):
        s = BusStats()
        for kind in ("read_miss", "write_miss", "invalidation", "writeback"):
            s.record(kind)
        assert s.total == 4
        assert s.by_kind["writeback"] == 1

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            BusStats().record("flush")
