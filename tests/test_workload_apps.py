"""Tests for the five SPLASH application analogues.

Beyond basic construction, these tests validate that each analogue
produces the *sharing mix* its docstring claims — that is the entire point
of the substitution for the real SPLASH inputs.
"""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import Op
from repro.directory.policy import AGGRESSIVE, CONVENTIONAL
from repro.system.machine import DirectoryMachine
from repro.system.placement import make_placement
from repro.workloads import APP_ORDER, SPLASH_APPS, build_app

SMALL = dict(num_procs=4, scale=0.4)


@pytest.fixture(scope="module")
def small_traces():
    return {name: build_app(name, seed=1, **SMALL) for name in APP_ORDER}


class TestConstruction:
    def test_app_order_matches_registry(self):
        assert set(APP_ORDER) == set(SPLASH_APPS)

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            build_app("fft")

    @pytest.mark.parametrize("name", APP_ORDER)
    def test_deterministic(self, name):
        a = build_app(name, num_procs=4, scale=0.2, seed=7)
        b = build_app(name, num_procs=4, scale=0.2, seed=7)
        assert list(a) == list(b)

    @pytest.mark.parametrize("name", APP_ORDER)
    def test_seed_changes_trace(self, name):
        a = build_app(name, num_procs=4, scale=0.2, seed=7)
        b = build_app(name, num_procs=4, scale=0.2, seed=8)
        assert list(a) != list(b)

    def test_all_procs_participate(self, small_traces):
        for name, trace in small_traces.items():
            procs = {a.proc for a in trace}
            assert procs == set(range(4)), name

    def test_traces_have_reads_and_writes(self, small_traces):
        for name, trace in small_traces.items():
            ops = {a.op for a in trace}
            assert ops == {Op.READ, Op.WRITE}, name

    def test_scale_changes_length(self):
        small = build_app("mp3d", num_procs=4, scale=0.2, seed=0)
        large = build_app("mp3d", num_procs=4, scale=0.5, seed=0)
        assert len(large) > len(small)

    def test_names_recorded(self, small_traces):
        for name, trace in small_traces.items():
            assert trace.name == name


class TestSharingMix:
    """Run each analogue through the machines and check the paper-shaped
    protocol response."""

    @pytest.fixture(scope="class")
    def savings(self, small_traces):
        out = {}
        cfg = MachineConfig(
            num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
        )
        for name, trace in small_traces.items():
            placement = make_placement("best_static", cfg, trace)
            conv = DirectoryMachine(cfg, CONVENTIONAL, placement, check=True)
            conv.run(trace)
            aggr = DirectoryMachine(cfg, AGGRESSIVE, placement, check=True)
            aggr.run(trace)
            out[name] = 100 * (1 - aggr.stats.total / conv.stats.total)
        return out

    def test_all_apps_benefit(self, savings):
        for name, pct in savings.items():
            assert pct > 0, f"{name} showed no adaptive benefit: {pct:.1f}%"

    def test_migratory_apps_lead(self, savings):
        """MP3D, Water and Cholesky must gain more than Pthor and Locus."""
        migratory_heavy = min(savings["mp3d"], savings["water"],
                              savings["cholesky"])
        mixed = max(savings["pthor"], savings["locusroute"])
        assert migratory_heavy > mixed

    def test_mp3d_near_theoretical_max(self, savings):
        assert savings["mp3d"] > 35

    def test_locusroute_modest(self, savings):
        assert savings["locusroute"] < 30


class TestWorkloadDetails:
    def test_mp3d_cell_visits_span_procs(self):
        """Space cells must be touched by many different processors."""
        from repro.workloads.apps import mp3d

        trace = mp3d.build(num_procs=4, particles_per_proc=16, cells=128,
                           steps=8, seed=2)
        cell_bytes = 128 * mp3d.CELL_WORDS * 4
        by_block: dict[int, set[int]] = {}
        for acc in trace:
            if acc.addr < cell_bytes:
                by_block.setdefault(acc.addr // 16, set()).add(acc.proc)
        multi = sum(1 for procs in by_block.values() if len(procs) > 1)
        assert multi / len(by_block) > 0.5

    def test_locusroute_mostly_reads(self):
        trace = build_app("locusroute", num_procs=4, scale=0.5, seed=2)
        assert trace.write_fraction < 0.2

    def test_water_positions_written_only_by_owner(self):
        from repro.workloads.apps import water

        trace = water.build(num_procs=4, molecules_per_proc=4, steps=2,
                            interactions_per_molecule=2, seed=3)
        nmol = 16
        pos_bytes = nmol * water.POS_WORDS * 4
        owners: dict[int, set[int]] = {}
        for acc in trace:
            if acc.op is Op.WRITE and acc.addr < pos_bytes:
                mol = acc.addr // (water.POS_WORDS * 4)
                owners.setdefault(mol, set()).add(acc.proc)
        for mol, writers in owners.items():
            assert writers == {mol // 4}

    def test_cholesky_processes_every_column_once(self):
        from repro.workloads.apps import cholesky

        trace = cholesky.build(num_procs=4, columns=32, words_per_column=8,
                               updates_per_column=2, touched_words=4, seed=4)
        # every column's first word is written during its cdiv
        col_first_writes = {
            acc.addr // 32
            for acc in trace
            if acc.op is Op.WRITE and acc.addr < 32 * 32
        }
        assert len(col_first_writes) == 32

    def test_pthor_queue_crosses_processors(self):
        from repro.workloads.apps import pthor

        trace = pthor.build(num_procs=4, elements=64, steps=2,
                            activations_per_proc=8, seed=5)
        assert len(trace) > 0
