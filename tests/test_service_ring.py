"""Unit tests for the consistent-hash ring.

The properties the router depends on: deterministic placement (router,
tests, and loadgen agree on ownership), minimal remap on membership
change (warm caches survive a rolling restart), and distinct replica
sets for hot-key fan-out.
"""

import pytest

from repro.service.ring import VNODES, HashRing

SHARDS = ["shard-0", "shard-1", "shard-2", "shard-3"]
KEYS = [f"key-{i}" for i in range(200)]


class TestRouting:
    def test_route_returns_a_member(self):
        ring = HashRing(SHARDS)
        for key in KEYS:
            assert ring.route(key) in SHARDS

    def test_deterministic_across_instances(self):
        a = HashRing(SHARDS)
        b = HashRing(SHARDS)
        assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]

    def test_insertion_order_irrelevant(self):
        a = HashRing(SHARDS)
        b = HashRing(list(reversed(SHARDS)))
        assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]

    def test_all_shards_own_keys(self):
        ring = HashRing(SHARDS)
        owners = {ring.route(k) for k in KEYS}
        assert owners == set(SHARDS)

    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.route("anything")
        with pytest.raises(LookupError):
            ring.preference("anything", 2)


class TestMembership:
    def test_remove_only_remaps_the_removed_shards_keys(self):
        ring = HashRing(SHARDS)
        before = {k: ring.route(k) for k in KEYS}
        ring.remove("shard-2")
        for key, owner in before.items():
            if owner != "shard-2":
                assert ring.route(key) == owner
            else:
                assert ring.route(key) != "shard-2"

    def test_add_back_restores_ownership(self):
        ring = HashRing(SHARDS)
        before = {k: ring.route(k) for k in KEYS}
        ring.remove("shard-1")
        ring.add("shard-1")
        assert {k: ring.route(k) for k in KEYS} == before

    def test_add_and_remove_idempotent(self):
        ring = HashRing(SHARDS)
        ring.add("shard-0")
        assert len(ring) == len(SHARDS)
        ring.remove("nonesuch")
        assert len(ring) == len(SHARDS)
        ring.remove("shard-0")
        ring.remove("shard-0")
        assert len(ring) == len(SHARDS) - 1

    def test_membership_protocol(self):
        ring = HashRing(["a", "b"])
        assert "a" in ring
        assert "c" not in ring
        assert ring.shards() == ["a", "b"]

    def test_remap_fraction_is_about_one_over_n(self):
        keys = [f"key-{i}" for i in range(2000)]
        ring = HashRing(SHARDS)
        before = {k: ring.route(k) for k in keys}
        ring.remove("shard-3")
        moved = sum(1 for k in keys if ring.route(k) != before[k])
        # Exactly the removed shard's keys moved: ~1/4 of the space,
        # never anything another shard owned.
        assert moved == sum(1 for o in before.values() if o == "shard-3")
        assert 0.10 < moved / len(keys) < 0.45


class TestPreference:
    def test_head_is_route(self):
        ring = HashRing(SHARDS)
        for key in KEYS[:50]:
            assert ring.preference(key, 3)[0] == ring.route(key)

    def test_distinct_members(self):
        ring = HashRing(SHARDS)
        for key in KEYS[:50]:
            replicas = ring.preference(key, 3)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_clamped_to_ring_size(self):
        ring = HashRing(["a", "b"])
        assert sorted(ring.preference("key", 5)) == ["a", "b"]


class TestDescribe:
    def test_shares_sum_to_one(self):
        description = HashRing(SHARDS).describe()
        assert description["shards"] == sorted(SHARDS)
        assert description["vnodes"] == VNODES
        assert abs(sum(description["shares"].values()) - 1.0) < 0.01
        # Vnodes keep the split within a few x of fair for small fleets.
        for share in description["shares"].values():
            assert 0.05 < share < 0.60

    def test_empty_ring_describes_empty(self):
        assert HashRing().describe() == {
            "shards": [], "vnodes": VNODES, "shares": {},
        }
