"""Behavioral contracts of the adaptive protocol families.

Four contracts are pinned here:

* **Differential behavior** — the hybrid update/invalidate and
  self-invalidation families are genuinely distinct protocols, with
  the orderings the literature predicts: on single-write
  producer-consumer sharing the hybrid's update mode beats MESI's
  invalidate-reload cycle; on write-run-heavy sharing its invalidate
  mode beats pure write-update; the self-invalidation protocol issues
  *zero* invalidation transactions anywhere.
* **Kernel equivalence** — the self-invalidation family runs inside
  the table-driven kernel envelope (batch and streaming), with stats
  and final cache state identical to the legacy packed loop.
* **Named fallbacks** — families outside the envelope fall back with
  the registry-declared ``family-unkerneled`` reason, never silently:
  a sweep across every registered family leaves no unexplained
  fallback and no missing one.
* **Classifier observationality** — the pattern-classifier machine's
  message accounting is identical to the stock machine under the same
  policy, while its taxonomy labels producer-consumer and
  false-sharing traces correctly.
"""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.kernels import registry as kernel_registry
from repro.kernels.streaming import BusStreamReplay
from repro.protocols import registry as families
from repro.protocols.classifier import PATTERNS
from repro.snooping.machine import BusMachine
from repro.system.machine import DirectoryMachine
from repro.trace import synth

NUM_PROCS = 4


def _config(num_procs=NUM_PROCS):
    return MachineConfig(
        num_procs=num_procs,
        cache=CacheConfig(size_bytes=None, block_size=16),
    )


def _single_write_trace():
    """One producer writes a word, three consumers read it, repeatedly."""
    return synth.producer_consumer(
        num_procs=NUM_PROCS, num_objects=2, words_per_object=1,
        rounds=10, consumers=3, seed=3,
    )


def _write_run_trace():
    """Migrating objects written in long same-writer runs."""
    return synth.migratory(
        num_procs=NUM_PROCS, num_objects=2, visits=8,
        reads_per_visit=1, writes_per_visit=6, seed=4,
    )


def _run_bus(name, trace):
    machine = BusMachine(_config(), families.bus_protocol(name))
    machine.run(trace)
    return machine


def _lines(machine):
    out = []
    for proc, cache in enumerate(machine.caches):
        for block in sorted(cache.resident_blocks()):
            line = cache.lookup(block)
            out.append((proc, block, line.state, line.dirty, line.counter))
    return out


def _bus_state(machine):
    return {
        "bus_stats": machine.bus_stats,
        "by_kind": machine.bus_stats.by_kind,
        "cache_stats": machine.cache_stats,
        "lines": _lines(machine),
    }


class TestBusDifferential:
    def test_hybrid_update_mode_beats_mesi_on_single_writes(self):
        trace = _single_write_trace()
        mesi = _run_bus("mesi", trace)
        hybrid = _run_bus("hybrid-update-invalidate", trace)
        update = _run_bus("write-update", trace)
        # Every write is consumed: updates beat invalidate-reload.
        assert update.bus_stats.total < hybrid.bus_stats.total
        assert hybrid.bus_stats.total < mesi.bus_stats.total
        # ... and the hybrid actually used both of its modes.
        assert hybrid.bus_stats.by_kind.get("update", 0) > 0
        assert hybrid.bus_stats.by_kind.get("invalidation", 0) > 0

    def test_hybrid_invalidate_mode_beats_write_update_on_runs(self):
        trace = _write_run_trace()
        mesi = _run_bus("mesi", trace)
        hybrid = _run_bus("hybrid-update-invalidate", trace)
        update = _run_bus("write-update", trace)
        # Long same-writer runs: updating remote copies on every write
        # is the pathology, and the hybrid's write-run counter escapes
        # it while pure write-update cannot.
        assert hybrid.bus_stats.total < update.bus_stats.total
        assert mesi.bus_stats.total <= hybrid.bus_stats.total

    @pytest.mark.parametrize(
        "trace_fn", [_single_write_trace, _write_run_trace],
        ids=["single-write", "write-run"],
    )
    def test_self_invalidation_issues_no_invalidations(self, trace_fn):
        trace = trace_fn()
        mesi = _run_bus("mesi", trace)
        selfinval = _run_bus("self-invalidation", trace)
        assert mesi.bus_stats.by_kind.get("invalidation", 0) > 0
        assert selfinval.bus_stats.by_kind.get("invalidation", 0) == 0
        # Sharers expire on their own; writes go through as updates
        # priced on the bus, so the protocol is not trivially free.
        assert selfinval.bus_stats.total > 0


class TestSelfInvalidationKernel:
    def test_batch_kernel_matches_packed_loop(self):
        trace = synth.interleave(
            [_single_write_trace(), _write_run_trace()], chunk=4, seed=5
        ).pack()
        reference = BusMachine(
            _config(), families.bus_protocol("self-invalidation")
        )
        with kernel_registry.disabled():
            reference.run(trace)
        kernel_registry.clear()
        machine = BusMachine(
            _config(), families.bus_protocol("self-invalidation")
        )
        machine.run(trace)
        assert kernel_registry.engagements["bus"] == 1
        assert _bus_state(machine) == _bus_state(reference)

    @pytest.mark.parametrize("chunk", (16, 257))
    def test_streaming_kernel_matches_packed_loop(self, chunk):
        trace = synth.interleave(
            [_single_write_trace(), _write_run_trace()], chunk=4, seed=5
        ).pack()
        reference = BusMachine(
            _config(), families.bus_protocol("self-invalidation")
        )
        with kernel_registry.disabled():
            reference.run(trace)
        kernel_registry.clear()
        machine = BusMachine(
            _config(), families.bus_protocol("self-invalidation")
        )
        replay = BusStreamReplay(machine)
        for segment in trace.segments(chunk):
            replay.feed(segment)
        replay.finish()
        assert kernel_registry.engagements["bus-stream"] == 1
        assert _bus_state(machine) == _bus_state(reference)


class TestNamedFallbacks:
    def test_hybrid_bus_falls_back_with_named_reason(self):
        kernel_registry.clear()
        trace = _single_write_trace().pack()
        machine = BusMachine(
            _config(), families.bus_protocol("hybrid-update-invalidate")
        )
        machine.run(trace)
        assert kernel_registry.fallbacks[("bus", "family-unkerneled")] == 1
        assert kernel_registry.engagements["bus"] == 0

    def test_family_directory_machines_fall_back_named(self):
        kernel_registry.clear()
        trace = _single_write_trace().pack()
        for fam in families.directory_families():
            if fam.machine is None:
                continue
            machine = fam.machine_class()(_config(), fam.policy)
            machine.run(trace)
        unkerneled = sum(
            1 for fam in families.directory_families()
            if fam.machine is not None and not fam.kernelable
        )
        assert kernel_registry.fallbacks[
            ("directory", "family-unkerneled")
        ] == unkerneled

    def test_sweep_envelope_has_zero_silent_fallbacks(self):
        # Run every registered family on both engines over one packed
        # trace.  Every kernelable family must engage; every unkerneled
        # one must record exactly its registry-declared reason — no
        # unexplained fallback, no unexplained engagement.
        kernel_registry.clear()
        trace = _single_write_trace().pack()
        expected_fallbacks = set()
        expected_engagements = 0
        for fam in families.bus_families():
            machine = BusMachine(_config(), fam.make_protocol())
            machine.run(trace)
            if fam.kernelable:
                expected_engagements += 1
            else:
                expected_fallbacks.add(("bus", fam.fallback_reason))
        for fam in families.directory_families():
            machine = fam.machine_class()(_config(), fam.policy)
            machine.run(trace)
            if fam.kernelable:
                expected_engagements += 1
            else:
                expected_fallbacks.add(("directory", fam.fallback_reason))
        assert set(kernel_registry.fallbacks) == expected_fallbacks
        assert all(reason for _, reason in kernel_registry.fallbacks)
        assert (kernel_registry.engagements["bus"]
                + kernel_registry.engagements["directory"]
                == expected_engagements)


class TestDirectoryFamilies:
    @pytest.mark.parametrize(
        "trace_fn", [_single_write_trace, _write_run_trace],
        ids=["single-write", "write-run"],
    )
    def test_self_invalidation_directory_never_invalidates(self, trace_fn):
        machine = families.make_directory_machine(
            "self-invalidation", _config()
        )
        machine.run(trace_fn())
        assert sum(machine.invalidation_sizes.values()) == 0
        assert machine.stats.total > 0

    def test_hybrid_directory_prices_updates(self):
        trace = _single_write_trace()
        conventional = families.make_directory_machine(
            "conventional", _config()
        )
        conventional.run(trace)
        hybrid = families.make_directory_machine(
            "hybrid-update-invalidate", _config()
        )
        hybrid.run(trace)
        # Same classification baseline, different wire protocol: the
        # hybrid pays data messages to push updates to sharers.
        assert hybrid.stats.total != conventional.stats.total

    def test_classifier_is_purely_observational(self):
        trace = synth.interleave(
            [_single_write_trace(), _write_run_trace()], chunk=4, seed=5
        )
        stock = DirectoryMachine(
            _config(), families.directory_policy("pattern-classifier")
        )
        stock.run(trace)
        classifier = families.make_directory_machine(
            "pattern-classifier", _config()
        )
        classifier.run(trace)
        assert classifier.stats.short == stock.stats.short
        assert classifier.stats.data == stock.stats.data
        assert classifier.stats.by_cause_short == stock.stats.by_cause_short
        assert classifier.cache_stats == stock.cache_stats

    def test_classifier_taxonomy_labels(self):
        machine = families.make_directory_machine(
            "pattern-classifier", _config()
        )
        machine.run(synth.producer_consumer(
            num_procs=NUM_PROCS, num_objects=1, words_per_object=1,
            rounds=8, consumers=3, seed=7,
        ))
        counts = machine.protocol.pattern_counts()
        assert set(counts) <= set(PATTERNS)
        assert counts["producer-consumer"] >= 1

        # Pin each processor to its own word of one block so the write
        # footprints are pairwise disjoint by construction.
        from repro.common.types import WORD_SIZE
        from repro.trace.core import Trace
        from repro.trace.synth import write

        accesses = []
        for _ in range(4):
            for proc in range(NUM_PROCS):
                accesses.append(write(proc, proc * WORD_SIZE))
        fs = families.make_directory_machine("pattern-classifier", _config())
        fs.run(Trace(accesses, "false-sharing"))
        assert fs.protocol.pattern_counts()["false-sharing"] >= 1
