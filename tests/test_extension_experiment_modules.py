"""Small-scale integration tests for the extension experiment modules.

The benchmark suite runs these at half scale; these tests cover the same
modules at small scale so `pytest tests/` alone exercises every
experiment entry point.
"""

import pytest

from repro.experiments import (
    common,
    limited_dir,
    oracle,
    topology,
    update_protocols,
)

SCALE = 0.15
PROCS = 4


@pytest.fixture(autouse=True, scope="module")
def _fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


class TestOracleExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return oracle.run(apps=("mp3d", "locusroute"), cache_size=None,
                          scale=SCALE, num_procs=PROCS)

    def test_oracle_bounds_all_protocols(self, rows):
        for row in rows:
            assert row.oracle <= row.conventional
            assert row.oracle <= row.basic * 1.05

    def test_hint_fraction_tracks_migratory_share(self, rows):
        by_app = {r.app: r for r in rows}
        assert (
            by_app["mp3d"].hint_fraction_pct
            > by_app["locusroute"].hint_fraction_pct
        )

    def test_render(self, rows):
        text = oracle.render(rows)
        assert "oracle" in text and "hinted reads %" in text


class TestUpdateProtocolExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return update_protocols.run(apps=("mp3d", "water"), cache_size=None,
                                    scale=SCALE, num_procs=PROCS)

    def test_write_update_loses_on_migratory_apps(self, rows):
        for row in rows:
            assert row.write_update > row.adaptive

    def test_hybrid_between_extremes_on_migratory(self, rows):
        for row in rows:
            assert row.adaptive <= row.hybrid

    def test_adaptive_hybrid_escapes_update_pathology(self, rows):
        # The write-run hybrid flips to invalidate mode inside runs:
        # on water — where pure write-update pays double MESI's traffic
        # — it escapes most of that pathology, and it never does worse
        # than the threshold-1 competitive hybrid anywhere.
        by_app = {row.app: row for row in rows}
        assert by_app["water"].adaptive_hybrid < by_app["water"].write_update
        for row in rows:
            assert row.adaptive_hybrid <= row.hybrid

    def test_self_invalidation_column_populated(self, rows):
        for row in rows:
            assert row.self_invalidation > 0

    def test_render(self, rows):
        text = update_protocols.render(rows)
        assert "write-update" in text
        assert "hybrid(run)" in text
        assert "self-inval" in text


class TestLimitedDirExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return limited_dir.run(apps=("mp3d", "pthor"), cache_size=None,
                               scale=SCALE, num_procs=PROCS)

    def test_three_representations_per_app(self, rows):
        by_app = {}
        for row in rows:
            by_app.setdefault(row.app, set()).add(row.representation)
        for app, reps in by_app.items():
            assert reps == {"full-map", "dir4B", "dir4NB"}, app

    def test_advantage_survives_every_representation(self, rows):
        for row in rows:
            assert row.reduction_pct > 0, row

    def test_render(self, rows):
        assert "directory" in limited_dir.render(rows)


class TestTopologyExperiment:
    def test_row_grid(self):
        rows = topology.run(apps=("mp3d",), scale=SCALE, num_procs=PROCS)
        names = [r.topology for r in rows]
        assert names[0] == "crossbar"
        assert any(n.startswith("mesh") for n in names)
        assert any(n.startswith("hypercube") for n in names)
