"""The ``repro-stats`` CLI, exercised in-process via ``main(argv)``."""

import json

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import Access, Op
from repro.directory.policy import BASIC
from repro.system.machine import DirectoryMachine
from repro.telemetry import JsonlSink, attach_recorder
from repro.telemetry.cli import main
from repro.trace.core import Trace


def _migratory_trace() -> Trace:
    accesses = []
    for _ in range(3):
        for proc in range(4):
            accesses.append(Access(proc, Op.READ, 0x40))
            accesses.append(Access(proc, Op.WRITE, 0x40))
    accesses.append(Access(1, Op.READ, 0x80))
    return Trace(accesses, name="cli")


@pytest.fixture(scope="module")
def log(tmp_path_factory):
    path = tmp_path_factory.mktemp("telemetry") / "events.jsonl"
    config = MachineConfig(
        num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
    )
    machine = DirectoryMachine(config, BASIC)
    with JsonlSink(path) as sink:
        attach_recorder(machine, sink=sink)
        machine.run(_migratory_trace())
    return path


def run_cli(capsys, *argv):
    status = main(list(argv))
    captured = capsys.readouterr()
    return status, captured.out, captured.err


class TestSummary:
    def test_counts_by_type(self, capsys, log):
        status, out, _ = run_cli(capsys, "summary", str(log))
        assert status == 0
        assert "coherence" in out and "classification" in out
        assert "directory[basic]" in out
        assert "blocks migratory at end" in out


class TestTimeline:
    def test_renders_per_block_lines(self, capsys, log):
        status, out, _ = run_cli(capsys, "timeline", str(log))
        assert status == 0
        assert "block 0x4 [directory[basic]]: migratory from step" in out

    def test_block_filter_accepts_hex(self, capsys, log):
        status, out, _ = run_cli(capsys, "timeline", str(log),
                                 "--block", "0x4")
        assert status == 0
        assert "migratory from step" in out
        assert "until end of run" in out

    def test_unknown_block_reports_and_fails(self, capsys, log):
        status, out, _ = run_cli(capsys, "timeline", str(log),
                                 "--block", "0x999")
        assert status == 1
        assert "no classification events" in out

    def test_engine_filter(self, capsys, log):
        status, out, _ = run_cli(capsys, "timeline", str(log),
                                 "--engine", "bus[mesi]")
        assert status == 0
        assert "no classification events" in out


class TestHot:
    def test_top_table(self, capsys, log):
        status, out, _ = run_cli(capsys, "hot", str(log), "--top", "1")
        assert status == 0
        assert "0x4" in out
        assert "0x8" not in out  # truncated to the single hottest block


class TestValidate:
    def test_valid_log_passes(self, capsys, log):
        status, out, _ = run_cli(capsys, "validate", str(log))
        assert status == 0
        assert "all schema-valid" in out

    def test_schema_violation_fails(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"type": "coherence", "step": 1}) + "\n")
        status, _, err = run_cli(capsys, "validate", str(bad))
        assert status == 1
        assert "missing field" in err


class TestErrors:
    def test_missing_file_exits_2(self, capsys, tmp_path):
        status, _, err = run_cli(capsys, "summary",
                                 str(tmp_path / "nope.jsonl"))
        assert status == 2
        assert "repro-stats" in err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
