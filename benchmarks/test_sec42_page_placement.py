"""Benchmark S4.2b — page placement and the trace/execution gap.

Section 4.2 attributes the smaller execution-driven message reduction
(32 % vs 46 % for MP3D) to round-robin page placement inflating the
non-migratory traffic.  This benchmark compares round-robin against the
majority-accessor static placement on small caches, where owner-affine
data (MP3D's particle records) must be re-fetched from its home node.
"""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.experiments import common, placement


def test_page_placement(benchmark):
    def _run():
        common.clear_caches()
        return placement.run(scale=BENCH_SCALE, num_procs=BENCH_PROCS)

    rows = run_once(benchmark, _run)
    print("\n" + placement.render(rows))
    by_key = {(r.app, r.placement): r for r in rows}

    # Round-robin placement inflates absolute message counts.
    for app in {r.app for r in rows}:
        rr = by_key[(app, "round_robin")]
        best = by_key[(app, "best_static")]
        assert rr.conventional_total >= best.conventional_total, app

    # For MP3D (owner-affine particle records), good placement raises
    # the adaptive reduction percentage — the paper's 32 % vs 46 % gap.
    rr = by_key[("mp3d", "round_robin")]
    best = by_key[("mp3d", "best_static")]
    assert best.reduction_pct > rr.reduction_pct
