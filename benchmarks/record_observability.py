"""Record telemetry overhead numbers.

Measures the same trace-replay benchmark as ``record_throughput.py`` in
three modes per machine and writes ``BENCH_observability.json``:

* ``off_packed`` — no hook installed, packed fast path.  Telemetry is
  zero-overhead when off, so this must stay within noise of the packed
  numbers in ``BENCH_throughput.json``.
* ``off_generic`` — no hook, generic per-``Access`` path (the baseline
  a recorder-carrying run should be compared against, since installing
  a hook forces this path).
* ``recorder`` — a telemetry recorder attached (enabled metrics
  registry + in-memory event sink), generic path.

Each configuration is timed in its own subprocess (min over
``--rounds`` process launches of the min over ``--reps`` in-process
repetitions), interleaved across rounds so slow periods of a noisy
machine hit every configuration equally.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_PATH = REPO / "BENCH_observability.json"
THROUGHPUT_PATH = REPO / "BENCH_throughput.json"

_TIMER_BODY = r'''
import sys, time
sys.path.insert(0, sys.argv[1])
machine_kind, mode, reps = sys.argv[2], sys.argv[3], int(sys.argv[4])
from repro.common.config import CacheConfig, MachineConfig
from repro.trace import synth

CFG = MachineConfig(num_procs=16,
                    cache=CacheConfig(size_bytes=64 * 1024, block_size=16))
TRACE = synth.interleave(
    [synth.migratory(num_procs=16, num_objects=16, visits=50, seed=1),
     synth.read_shared(num_procs=16, num_objects=16, rounds=20,
                       base=1 << 20, seed=2)],
    chunk=8, seed=3)

if mode == "off_generic":
    trace = list(TRACE)  # a plain list never takes the packed path
else:
    trace = TRACE
    TRACE.pack().blocks_column(4)  # resolve columns outside timing

if machine_kind == "directory":
    from repro.directory.policy import AGGRESSIVE
    from repro.system.machine import DirectoryMachine
    make = lambda: DirectoryMachine(CFG, AGGRESSIVE)
else:
    from repro.snooping.machine import BusMachine
    from repro.snooping.protocols import AdaptiveSnoopingProtocol
    make = lambda: BusMachine(CFG, AdaptiveSnoopingProtocol())

if mode == "recorder":
    from repro.telemetry import MetricsRegistry, attach_recorder
    from repro.telemetry.sinks import MemorySink

    def prepare():
        machine = make()
        attach_recorder(machine, registry=MetricsRegistry(),
                        sink=MemorySink())
        return machine
else:
    prepare = make

prepare().run(trace)  # warm-up
best = float("inf")
for _ in range(reps):
    machine = prepare()
    t0 = time.perf_counter()
    machine.run(trace)
    best = min(best, time.perf_counter() - t0)
print(f"{len(TRACE)} {best}")
'''


def time_config(src: Path, machine: str, mode: str,
                reps: int) -> tuple[int, float]:
    """Best wall time for one (source tree, machine, mode)."""
    out = subprocess.run(
        [sys.executable, "-c", _TIMER_BODY, str(src), machine, mode,
         str(reps)],
        capture_output=True, text=True, check=True,
    )
    accesses, best = out.stdout.split()
    return int(accesses), float(best)


def measure(src: Path, configs: list[tuple[str, str]], rounds: int,
            reps: int) -> dict:
    """Interleaved min-of-rounds measurement of every configuration."""
    best: dict[tuple[str, str], float] = {c: float("inf") for c in configs}
    accesses = 0
    for _ in range(rounds):
        for config in configs:
            accesses, elapsed = time_config(src, *config, reps=reps)
            best[config] = min(best[config], elapsed)
    result = {"accesses": accesses}
    for (machine, mode), elapsed in best.items():
        key = f"{machine}_{mode}"
        result[f"{key}_ms"] = round(elapsed * 1e3, 3)
        result[f"{key}_accesses_per_s"] = round(accesses / elapsed)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=6,
                        help="interleaved process launches per config")
    parser.add_argument("--reps", type=int, default=10,
                        help="in-process repetitions per launch")
    parser.add_argument("--baseline-src", type=Path, default=None,
                        help="src/ of a pre-telemetry tree; measured "
                        "hooks-off on the same machine to separate real "
                        "overhead from load drift in the recorded "
                        "BENCH_throughput.json numbers")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    configs = [(machine, mode)
               for machine in ("directory", "bus")
               for mode in ("off_packed", "off_generic", "recorder")]

    timings = measure(REPO / "src", configs, args.rounds, args.reps)

    record = {
        "benchmark": "benchmarks/record_observability.py "
                     "(16 procs, 64K caches, 16-byte blocks, "
                     "migratory+read_shared interleave)",
        "method": f"min over {args.rounds} interleaved subprocess rounds "
                  f"of min-of-{args.reps} in-process repetitions",
        "timings": timings,
        "overhead": {
            # Hook forces the generic path, so the honest recorder cost
            # is measured against the generic (not packed) baseline.
            "directory_recorder_vs_generic": round(
                timings["directory_recorder_ms"]
                / timings["directory_off_generic_ms"], 2),
            "bus_recorder_vs_generic": round(
                timings["bus_recorder_ms"]
                / timings["bus_off_generic_ms"], 2),
            "directory_recorder_vs_packed": round(
                timings["directory_recorder_ms"]
                / timings["directory_off_packed_ms"], 2),
            "bus_recorder_vs_packed": round(
                timings["bus_recorder_ms"]
                / timings["bus_off_packed_ms"], 2),
        },
    }

    if args.baseline_src is not None:
        base = measure(args.baseline_src,
                       [("directory", "off_packed"), ("bus", "off_packed")],
                       args.rounds, args.reps)
        record["hooks_off_vs_same_machine_baseline"] = {
            "baseline_directory_off_packed_ms": base["directory_off_packed_ms"],
            "baseline_bus_off_packed_ms": base["bus_off_packed_ms"],
            "directory_packed_ratio": round(
                timings["directory_off_packed_ms"]
                / base["directory_off_packed_ms"], 3),
            "bus_packed_ratio": round(
                timings["bus_off_packed_ms"]
                / base["bus_off_packed_ms"], 3),
        }

    if THROUGHPUT_PATH.exists():
        reference = json.loads(THROUGHPUT_PATH.read_text()).get("after", {})
        if "directory_packed_ms" in reference:
            record["hooks_off_vs_throughput_baseline"] = {
                "reference": str(THROUGHPUT_PATH.name),
                "directory_packed_ratio": round(
                    timings["directory_off_packed_ms"]
                    / reference["directory_packed_ms"], 3),
                "bus_packed_ratio": round(
                    timings["bus_off_packed_ms"]
                    / reference["bus_packed_ms"], 3),
            }

    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
