"""Benchmark T2 — regenerate Table 2 (message counts by cache size).

Runs the five application analogues across the paper's cache sizes and
four protocols, prints the paper-style table, and asserts the headline
shapes: the adaptive protocols save messages everywhere, orderings hold,
and the relative benefit does not shrink as caches grow.
"""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.experiments import common, table2


def _run():
    common.clear_caches()
    return table2.run(scale=BENCH_SCALE, num_procs=BENCH_PROCS)


def test_table2_sweep(benchmark):
    rows = run_once(benchmark, _run)
    print("\n" + table2.render(rows))

    # Shape 1: every adaptive protocol saves messages on every cell.
    for row in rows:
        conv = row.cells["conventional"].total
        for name in ("conservative", "basic", "aggressive"):
            assert row.cells[name].total <= conv * 1.02, (row.app, name)

    # Shape 2: aggressive >= basic >= conservative (small tolerance).
    for row in rows:
        aggr = row.cells["aggressive"].reduction_pct
        basi = row.cells["basic"].reduction_pct
        cons = row.cells["conservative"].reduction_pct
        assert aggr >= basi - 1.5, row
        assert basi >= cons - 1.5, row

    # Shape 3: relative effectiveness improves (or holds) with cache size.
    by_app = {}
    for row in rows:
        by_app.setdefault(row.app, []).append(
            (row.cache_size, row.cells["aggressive"].reduction_pct)
        )
    for app, points in by_app.items():
        points.sort()
        smallest = points[0][1]
        largest = points[-1][1]
        assert largest >= smallest - 1.0, (app, points)

    # Shape 4: migratory-heavy apps approach the 50 % bound at 1 MB;
    # LocusRoute and Pthor stay modest (paper: 13.7 % and 18.7 %).
    big = {r.app: r.cells["aggressive"].reduction_pct
           for r in rows if r.cache_size == 1024 * 1024}
    assert big["mp3d"] > 35
    assert big["water"] > 25
    assert big["cholesky"] > 25
    assert big["locusroute"] < 30
    assert big["pthor"] < 30

    # Shape 5: data-carrying messages are nearly unchanged by adaptation.
    for row in rows:
        conv = row.cells["conventional"].data
        aggr = row.cells["aggressive"].data
        assert aggr <= conv * 1.12, (row.app, row.cache_size)
