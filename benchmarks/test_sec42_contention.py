"""Benchmark S4.2c — the contention mechanism behind the 20 % read-miss
latency improvement Section 4.2 reports."""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.experiments import common, contention


def test_contention_effect(benchmark):
    def _run():
        common.clear_caches()
        return contention.run(scale=BENCH_SCALE, num_procs=BENCH_PROCS)

    rows = run_once(benchmark, _run)
    print("\n" + contention.render(rows))
    for row in rows:
        # the adaptive protocol is faster end to end...
        assert row.adaptive_cycles < row.base_cycles, row
        # ...queues less at the controllers...
        assert row.adaptive_contention_share <= row.base_contention_share + 1e-9
        # ...and read misses speed up even though their own message
        # count is unchanged (the paper's surprising observation).
        assert row.read_miss_latency_reduction_pct > 0, row
    # the latency improvement is a contention effect of meaningful size
    # on at least one application (the paper saw 20 % on MP3D).
    assert max(r.read_miss_latency_reduction_pct for r in rows) > 5
