"""Benchmarks R1/R2 — the related-work comparisons (Section 5).

* R1: on-line adaptation vs the off-line read-exclusive oracle
  (Berkeley Read-With-Ownership / load-with-intent-to-modify).
* R2: write-invalidate vs write-update vs the Alpha-style competitive
  hybrid.
* Storage: the directory-entry overhead table for Section 2.2's
  hardware-cost claim.
"""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.analysis.overhead import (
    adaptive_layout,
    conventional_layout,
    overhead_table,
)
from repro.directory.policy import PAPER_POLICIES
from repro.experiments import common, oracle, update_protocols


def test_oracle_comparison(benchmark):
    def _run():
        common.clear_caches()
        return oracle.run(scale=BENCH_SCALE, num_procs=BENCH_PROCS)

    rows = run_once(benchmark, _run)
    print("\n" + oracle.render(rows))
    for row in rows:
        # The oracle bounds every protocol from below in message count.
        assert row.oracle <= row.conventional
        assert row.oracle <= row.basic * 1.02, row
        # The aggressive on-line protocol closes most of the gap on the
        # migratory-heavy applications.
        if row.app in ("mp3d", "water", "cholesky"):
            assert row.aggressive <= row.oracle * 1.15, row


def test_update_protocol_comparison(benchmark):
    def _run():
        common.clear_caches()
        return update_protocols.run(scale=BENCH_SCALE, num_procs=BENCH_PROCS)

    rows = run_once(benchmark, _run)
    print("\n" + update_protocols.render(rows))
    by_app = {r.app: r for r in rows}
    for row in rows:
        # The adaptive protocol dominates its own base protocol.
        assert row.adaptive <= row.mesi * 1.02, row
    # Write-update loses on the migratory-heavy applications (the
    # introduction's argument for starting from write-invalidate)...
    for app in ("mp3d", "water", "cholesky"):
        assert by_app[app].write_update > by_app[app].mesi, app
        # ...and the Alpha-style hybrid also handles them poorly.
        assert by_app[app].hybrid > by_app[app].adaptive, app


def test_directory_overhead(benchmark):
    text = run_once(benchmark, overhead_table, PAPER_POLICIES)
    print("\n" + text)
    conv = conventional_layout(16)
    for policy in PAPER_POLICIES[1:]:
        extra = adaptive_layout(policy, 16).total_bits - conv.total_bits
        assert 0 < extra <= 6  # "would not significantly increase cost"
