"""Record the parallel-harness wall-clock numbers.

Times the full sweep — ``repro-experiments all --scale 0.25 --jobs 4``
— three ways and writes the results to ``BENCH_parallel.json``:

* ``before`` — the same command on a pre-optimization source tree
  (``--baseline-src``, e.g. a git worktree of the commit before this
  work); skipped (carried forward from the existing JSON) when the flag
  is absent;
* ``after_cold`` — the current tree against an empty result cache: the
  persistent executor, the shared-trace arena, and the *intra-run*
  replay dedup the content-addressed cache provides (table2 after
  table3 shares every infinite-cache conventional replay, the ablations
  share their baselines, and so on);
* ``after_warm`` — the identical command again, same cache: everything
  the cache can serve is served.

Every run shares one pre-warmed trace cache so trace synthesis (paid
identically by every tree) does not flatter the comparison; the result
cache is private to this measurement and never touches the user's.

Run from the repository root::

    git worktree add /tmp/base <pre-optimization-commit>
    python benchmarks/record_parallel.py --baseline-src /tmp/base/src
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_PATH = REPO / "BENCH_parallel.json"

COMMAND = ("all", "--scale", "0.25", "--jobs", "4")


def run_sweep(src: Path, env_overrides: dict) -> float:
    """Wall-clock seconds for one ``repro-experiments all`` subprocess."""
    env = os.environ.copy()
    env.update(env_overrides)
    env["PYTHONPATH"] = str(src)
    started = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", *COMMAND],
        env=env, check=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    return time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=1,
                        help="timed launches per configuration (min wins)")
    parser.add_argument("--baseline-src", type=Path, default=None,
                        help="src/ of the pre-optimization tree to "
                        "re-measure as the 'before' section")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    previous = {}
    if args.out.exists():
        previous = json.loads(args.out.read_text())

    with tempfile.TemporaryDirectory(prefix="repro-bench-parallel-") as tmp:
        trace_cache = os.path.join(tmp, "traces")
        result_cache = os.path.join(tmp, "results")
        shared = {"REPRO_TRACE_CACHE": trace_cache}

        # Pre-warm the shared trace cache (untimed) so every timed run
        # loads the same packed traces instead of synthesizing them.
        run_sweep(REPO / "src", {**shared, "REPRO_RESULT_CACHE": "off"})

        before = previous.get("before", {})
        if args.baseline_src is not None:
            seconds = min(run_sweep(args.baseline_src, dict(shared))
                          for _ in range(args.rounds))
            before = {"seconds": round(seconds, 2)}

        cold = float("inf")
        warm = float("inf")
        for _ in range(args.rounds):
            subprocess.run(["rm", "-rf", result_cache], check=True)
            env = {**shared, "REPRO_RESULT_CACHE": result_cache}
            cold = min(cold, run_sweep(REPO / "src", env))
            warm = min(warm, run_sweep(REPO / "src", env))

    record = {
        "benchmark": "repro-experiments " + " ".join(COMMAND),
        "method": f"min over {args.rounds} subprocess launch(es) per "
                  "configuration; shared pre-warmed trace cache; "
                  "fresh result cache per cold round",
        "before": before,
        "after_cold": {"seconds": round(cold, 2)},
        "after_warm": {"seconds": round(warm, 2)},
        "warm_fraction_of_cold": round(warm / cold, 3),
    }
    if before:
        record["speedup_cold_vs_before"] = round(
            before["seconds"] / cold, 2)
        record["speedup_warm_vs_before"] = round(
            before["seconds"] / warm, 2)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
