"""Benchmark S4.3 — the bus-based snooping protocols.

Runs all five analogues on the bus machine under MESI, the adaptive
extension, and the always-migrate baseline; prices them under the two
cost models of Section 4.3 and asserts the reported shapes.
"""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.experiments import bus, common


def test_bus_protocols(benchmark):
    def _run():
        common.clear_caches()
        return bus.run(scale=BENCH_SCALE, num_procs=BENCH_PROCS)

    rows = run_once(benchmark, _run)
    print("\n" + bus.render(rows))

    for row in rows:
        # The adaptive protocol never increases transaction counts.
        assert row.adaptive_model1 <= row.mesi_model1 * 1.02, row
        # Model 2 (replies cost two) always shrinks the advantage,
        # because adaptive invalidations need the Migratory reply.
        assert row.model2_saving_pct <= row.model1_saving_pct + 1e-9, row

    big = {r.app: r for r in rows if r.cache_size == 1024 * 1024}
    # Water and MP3D save the most under model 1 (paper: over 40 %; the
    # margin shrinks at reduced benchmark scale as cold misses weigh in).
    assert big["mp3d"].model1_saving_pct > 22
    assert big["water"].model1_saving_pct > 22
    # Pthor's savings are modest (paper: 7-10 % model 1, 3.9-5 % model 2).
    assert big["pthor"].model1_saving_pct < 25
    assert big["pthor"].model2_saving_pct < 12
    # The always-migrate baseline wins on heavily migratory programs but
    # not on LocusRoute-style read-shared traffic.
    assert big["mp3d"].always_migrate_model1 <= big["mp3d"].adaptive_model1
