"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures and
asserts its qualitative shape.  ``REPRO_BENCH_SCALE`` (default 0.5)
shrinks the workloads so the full suite finishes in a few minutes; run
``examples/splash_campaign.py`` (or ``repro-experiments all``) at scale
1.0 for the calibrated numbers recorded in EXPERIMENTS.md.
"""

import os

import pytest

#: Workload scale used by all benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: Processor count (the paper's 16).
BENCH_PROCS = int(os.environ.get("REPRO_BENCH_PROCS", "16"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_procs() -> int:
    return BENCH_PROCS


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
