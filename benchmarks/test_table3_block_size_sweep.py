"""Benchmark T3 — regenerate Table 3 (message counts by block size).

Runs the block-size sweep (16..256 bytes, no capacity misses), prints the
paper-style table, and asserts the shapes the paper reports: adaptive
always worthwhile at these block sizes under equal message costs, with
MP3D's advantage eroding at large blocks (false sharing) while
Cholesky's counts keep falling (spatial locality).
"""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.experiments import common, table3


def _run():
    common.clear_caches()
    return table3.run(scale=BENCH_SCALE, num_procs=BENCH_PROCS)


def test_table3_sweep(benchmark):
    rows = run_once(benchmark, _run)
    print("\n" + table3.render(rows))

    cells = {(r.app, r.block_size): r.cells for r in rows}
    apps = {r.app for r in rows}
    blocks = sorted({r.block_size for r in rows})

    # Shape 1: using the adaptive protocol never costs messages overall
    # ("it never sent more messages than a standard protocol").
    for row in rows:
        conv = row.cells["conventional"].total
        for name in ("conservative", "basic", "aggressive"):
            assert row.cells[name].total <= conv * 1.02, (
                row.app, row.block_size, name,
            )

    # Shape 2: Cholesky's message counts fall steeply with block size
    # (long sequential column scans).
    chol = [cells[("cholesky", b)]["conventional"].total for b in blocks]
    assert chol[0] > 2 * chol[-1]

    # Shape 3: MP3D's traffic grows with block size (false sharing makes
    # the data ping-pong), and its adaptive advantage erodes.
    mp3d = [cells[("mp3d", b)]["conventional"].total for b in blocks]
    assert mp3d[-1] > mp3d[0] * 0.95
    mp3d_red = [cells[("mp3d", b)]["aggressive"].reduction_pct for b in blocks]
    assert mp3d_red[-1] < max(mp3d_red)

    # Shape 4: the aggressive protocol remains the right choice at every
    # block size simulated ("still the correct strategy for all of the
    # applications and all of the block sizes").
    for app in apps:
        for b in blocks:
            assert cells[(app, b)]["aggressive"].reduction_pct > 0, (app, b)
