"""Benchmarks R8/R9/R10 — robustness, invalidation patterns, policy map."""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.experiments import common, inval_patterns, policy_space, robustness


def test_seed_robustness(benchmark):
    def _run():
        common.clear_caches()
        return robustness.run(
            apps=("mp3d", "pthor"), seeds=(0, 1),
            cache_size=None, scale=BENCH_SCALE, num_procs=BENCH_PROCS,
        )

    rows = run_once(benchmark, _run)
    print("\n" + robustness.render(rows))
    for row in rows:
        assert row.minimum > 0, row
        assert row.spread < max(5.0, 0.3 * row.mean), row


def test_invalidation_patterns(benchmark):
    def _run():
        common.clear_caches()
        return inval_patterns.run(scale=BENCH_SCALE, num_procs=BENCH_PROCS)

    rows = run_once(benchmark, _run)
    print("\n" + inval_patterns.render(rows))
    by_key = {(r.app, r.protocol): r for r in rows}
    for app in ("mp3d", "cholesky", "water"):
        conv = by_key[(app, "conventional")]
        aggr = by_key[(app, "aggressive")]
        # single-copy invalidations dominate conventionally and are
        # mostly consumed by adaptation
        assert conv.share(1) > 0.7, app
        assert aggr.total_invalidations < conv.total_invalidations, app


def test_policy_space_map(benchmark):
    def _run():
        common.clear_caches()
        return policy_space.run(
            apps=("mp3d",), cache_size=8 * 1024,
            scale=BENCH_SCALE, num_procs=BENCH_PROCS,
        )

    rows = run_once(benchmark, _run)
    print("\n" + policy_space.render(rows))
    best = policy_space.best_point(rows, "mp3d")
    # the conclusions' corner: immediate reclassification, initially
    # migratory (memory ties forgetting when the initial class is
    # migratory, since forgetting reverts to migratory anyway)
    assert best.threshold == 1
    assert best.initial_migratory
