"""CI perf-smoke: a warm rerun must be served by the result cache.

Runs a tiny Table 2 sweep twice against a temporary result cache and
asserts that the second pass is at least 90% cache hits with
byte-identical rendered output.  This is the fast contract check behind
the full ``benchmarks/record_parallel.py`` measurement: if the
content-addressed keys drift between two identical in-process runs
(e.g. a non-deterministic digest input sneaks in), this fails in
seconds.

Run from the repository root::

    python benchmarks/perf_smoke.py
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: Minimum warm-pass hit rate the cache must deliver.
MIN_HIT_RATE = 0.90

SWEEP = dict(
    apps=("mp3d", "water"),
    cache_sizes=(16 * 1024, 64 * 1024),
    scale=0.1,
)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-perf-smoke-") as tmp:
        os.environ["REPRO_RESULT_CACHE"] = os.path.join(tmp, "results")
        from repro.experiments import common, resultcache, table2

        started = time.perf_counter()
        cold_rows = table2.run(jobs=1, **SWEEP)
        cold_seconds = time.perf_counter() - started
        cold = resultcache.counts()

        # A fresh process would arrive with empty in-process state; the
        # disk cache alone must carry the warm run.
        resultcache.reset_counts()
        resultcache.clear_memory()
        common.clear_caches()

        started = time.perf_counter()
        warm_rows = table2.run(jobs=1, **SWEEP)
        warm_seconds = time.perf_counter() - started
        warm = resultcache.counts()

        total = warm["hits"] + warm["misses"]
        hit_rate = warm["hits"] / total if total else 0.0
        print(f"cold: {cold_seconds:.2f}s "
              f"({cold['hits']} hits, {cold['misses']} misses)")
        print(f"warm: {warm_seconds:.2f}s "
              f"({warm['hits']} hits, {warm['misses']} misses, "
              f"hit rate {100 * hit_rate:.0f}%)")

        if table2.render(warm_rows) != table2.render(cold_rows):
            print("FAIL: warm output differs from cold output",
                  file=sys.stderr)
            return 1
        if total == 0:
            print("FAIL: warm run made no cache lookups", file=sys.stderr)
            return 1
        if hit_rate < MIN_HIT_RATE:
            print(f"FAIL: warm hit rate {100 * hit_rate:.0f}% "
                  f"< {100 * MIN_HIT_RATE:.0f}%", file=sys.stderr)
            return 1
        print("ok")
        return 0


if __name__ == "__main__":
    sys.exit(main())
