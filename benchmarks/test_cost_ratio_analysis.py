"""Benchmark S4.1 — the in-text cost-ratio analysis.

Re-prices the simulation results under the paper's alternative cost
models (2:1, 4:1, and one unit per 16 bytes) and asserts the directions
the text reports: savings shrink as data messages get pricier, and under
the byte model the advantage at 256-byte blocks approaches zero (with
LocusRoute dipping into an outright penalty while Cholesky keeps a
positive saving).
"""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.experiments import common, cost_ratio


def test_cost_ratio_small_blocks(benchmark):
    def _run():
        common.clear_caches()
        return cost_ratio.run(
            cache_size=None, block_size=16,
            scale=BENCH_SCALE, num_procs=BENCH_PROCS,
        )

    rows = run_once(benchmark, _run)
    print("\n" + cost_ratio.render(rows))
    for row in rows:
        s = row.savings_by_model
        assert s["1:1"] >= s["2:1"] - 1e-9, row
        assert s["2:1"] >= s["4:1"] - 1e-9, row


def test_cost_ratio_large_blocks(benchmark):
    def _run():
        # Traces are already cached from the previous benchmark if run in
        # the same session; clear to be deterministic either way.
        common.clear_caches()
        return cost_ratio.run(
            cache_size=None, block_size=256,
            scale=BENCH_SCALE, num_procs=BENCH_PROCS,
        )

    rows = run_once(benchmark, _run)
    print("\n" + cost_ratio.render(rows))
    by_app = {
        (r.app, r.policy): r.savings_by_model["1+bytes/16"] for r in rows
    }
    # Byte-weighted savings at 256-byte blocks are small everywhere...
    for (app, policy), saving in by_app.items():
        assert saving < 25, (app, policy, saving)
    # ...with Cholesky still positive for the conservative protocol
    # (the paper reports 7.5 %) and LocusRoute's aggressive near or
    # below zero (the paper reports a 0.4 % penalty).
    assert by_app[("cholesky", "conservative")] > 0
    assert by_app[("locusroute", "aggressive")] < 6
