"""Benchmark A4 — adaptive vs non-adaptive migrate-on-read-miss.

The related-work section contrasts the adaptive protocols with the
Sequent Symmetry (model B) / Alewife policy of always migrating modified
blocks, noting Thakkar's observation that it inflates read misses on
other sharing patterns and calling for "a quantitative comparison".
This benchmark provides that comparison on our workloads.
"""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.analysis.report import format_table
from repro.experiments import common
from repro.snooping.protocols import (
    AdaptiveSnoopingProtocol,
    AlwaysMigrateProtocol,
    MesiProtocol,
)
from repro.workloads.profiles import APP_ORDER


def test_always_migrate_comparison(benchmark):
    def _run():
        common.clear_caches()
        rows = []
        for app in APP_ORDER:
            trace = common.get_trace(app, BENCH_PROCS, 0, BENCH_SCALE)
            mesi = common.run_bus(trace, MesiProtocol(), 256 * 1024,
                                  num_procs=BENCH_PROCS)
            adapt = common.run_bus(trace, AdaptiveSnoopingProtocol(),
                                   256 * 1024, num_procs=BENCH_PROCS)
            always = common.run_bus(trace, AlwaysMigrateProtocol(),
                                    256 * 1024, num_procs=BENCH_PROCS)
            rows.append((app, mesi, adapt, always))
        return rows

    rows = run_once(benchmark, _run)
    print("\n" + format_table(
        ["app", "mesi total", "adaptive total", "always-mig total",
         "mesi rd-miss", "adaptive rd-miss", "always rd-miss"],
        [
            [app, mesi.total, adapt.total, always.total,
             mesi.read_miss, adapt.read_miss, always.read_miss]
            for app, mesi, adapt, always in rows
        ],
        title="A4: adaptive vs always-migrate (bus transactions, 256K)",
    ))

    by_app = {app: (mesi, adapt, always) for app, mesi, adapt, always in rows}
    # On migratory-heavy traffic always-migrate is optimal; the adaptive
    # protocol gets close without the downside.
    mesi, adapt, always = by_app["mp3d"]
    assert always.total <= adapt.total <= mesi.total
    # Thakkar's effect: always-migrate inflates read misses on the
    # read-shared-heavy application relative to the adaptive protocol.
    mesi, adapt, always = by_app["locusroute"]
    assert always.read_miss >= adapt.read_miss
