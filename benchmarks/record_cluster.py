"""Record cluster serving numbers into ``BENCH_cluster.json``.

Three series against real ``repro-cluster`` fleets (each spawned on an
ephemeral port with a private shared result cache):

* ``zipf`` — the load generator's zipf-over-traces mix, cold then warm,
  at 1/2/4/8 shards.  Honest end-to-end numbers for this host: on a
  box with fewer cores than shards, CPU-bound replays cannot scale
  with shard count, and the record says so rather than pretending.
* ``slot_bound`` — distinct specs with an injected per-execution
  service time (``REPRO_SERVICE_INJECT_DELAY_MS``), so the bottleneck
  is per-shard execution *slots* rather than host CPU — the regime a
  real fleet shards for.  Cold throughput here is expected to scale
  roughly linearly until the closed-loop concurrency is the limit.
* ``hot_key`` — one saturated hot key against a 4-shard fleet with the
  router cache off, replication off vs on.  Alongside rps/latency the
  record keeps each shard's forward count: with ``replicas=2`` the hot
  key's traffic demonstrably splits across two shards instead of
  melting one.

Run from the repo root::

    PYTHONPATH=src python benchmarks/record_cluster.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
# The fleets are subprocesses: they need the tree importable too.
_SRC = str(REPO / "src")
if _SRC not in os.environ.get("PYTHONPATH", "").split(os.pathsep):
    os.environ["PYTHONPATH"] = os.pathsep.join(
        part for part in (_SRC, os.environ.get("PYTHONPATH", "")) if part
    )

from repro.service.client import AsyncServiceClient          # noqa: E402
from repro.service.loadgen import (                          # noqa: E402
    ManagedCluster,
    RunStats,
    SpecMix,
    closed_loop,
)
from repro.service.worker import INJECT_DELAY_ENV            # noqa: E402

OUT_PATH = REPO / "BENCH_cluster.json"

SHARD_COUNTS = (1, 2, 4, 8)

#: Injected per-execution service time for the slot-bound series (ms).
#: Large relative to the real CPU cost of a scale-0.02 replay, so the
#: bottleneck is per-shard execution slots, not this host's cores.
SLOT_DELAY_MS = 600

#: Workload scale for the slot-bound series (small: the injected delay
#: should dominate the real service time).
SLOT_SCALE = 0.02


async def distinct_loop(client: AsyncServiceClient, total: int,
                        concurrency: int, scale: float) -> RunStats:
    """Closed-loop pass where every request is a distinct spec (so every
    request is a genuine execution — nothing caches or coalesces)."""
    stats = RunStats()
    remaining = iter(range(total))

    async def one_worker() -> None:
        for i in remaining:
            started = time.perf_counter()
            try:
                status, _, _ = await client.replay_raw(
                    engine="directory", app="water", policy="basic",
                    cache_size=(64 + i) * 1024, scale=scale,
                )
            except (OSError, asyncio.TimeoutError):
                stats.errors += 1
                continue
            latency = (time.perf_counter() - started) * 1000.0
            if status == 200:
                stats.record(latency)
            elif status == 429:
                stats.shed += 1
            else:
                stats.errors += 1

    begun = time.perf_counter()
    await asyncio.gather(*(one_worker() for _ in range(concurrency)))
    stats.seconds = time.perf_counter() - begun
    return stats


async def hot_key_loop(client: AsyncServiceClient, total: int,
                       concurrency: int, scale: float) -> RunStats:
    """Closed-loop pass of one identical (pre-warmed) spec."""
    stats = RunStats()
    remaining = iter(range(total))

    async def one_worker() -> None:
        for _ in remaining:
            started = time.perf_counter()
            try:
                status, _, _ = await client.replay_raw(
                    engine="directory", app="water", policy="basic",
                    cache_size=64 * 1024, scale=scale,
                )
            except (OSError, asyncio.TimeoutError):
                stats.errors += 1
                continue
            latency = (time.perf_counter() - started) * 1000.0
            if status == 200:
                stats.record(latency)
            else:
                stats.errors += 1

    begun = time.perf_counter()
    await asyncio.gather(*(one_worker() for _ in range(concurrency)))
    stats.seconds = time.perf_counter() - begun
    return stats


def zipf_series(args) -> list[dict]:
    entries = []
    for shards in SHARD_COUNTS:
        with tempfile.TemporaryDirectory(prefix="bench-cluster-") as cache:
            with ManagedCluster(shards=shards, jobs=1, cache_dir=cache,
                                router_cache=256, replicas=2) as fleet:
                client = AsyncServiceClient("127.0.0.1", fleet.port)
                cold = asyncio.run(closed_loop(
                    client, SpecMix(seed=1), args.requests,
                    args.concurrency,
                ))
                warm = asyncio.run(closed_loop(
                    client, SpecMix(seed=1), args.requests,
                    args.concurrency,
                ))
        entries.append({"shards": shards, "cold": cold.summary(),
                        "warm": warm.summary()})
        print(f"[zipf] shards={shards} "
              f"cold={entries[-1]['cold']['throughput_rps']}rps "
              f"warm={entries[-1]['warm']['throughput_rps']}rps",
              file=sys.stderr)
    return entries


async def _slot_bound_pass(port: int, shards: int,
                           args) -> RunStats:
    client = AsyncServiceClient("127.0.0.1", port)
    # Untimed warmup: a couple of distinct replays per shard pay the
    # one-time per-shard costs (trace build, executor spin-up) so the
    # timed pass measures steady-state slot capacity.
    await asyncio.gather(*(client.replay(
        engine="directory", app="water", policy="aggressive",
        cache_size=(300 + i) * 1024, scale=SLOT_SCALE,
    ) for i in range(2 * shards)))
    return await distinct_loop(client, args.slot_requests,
                               args.concurrency, SLOT_SCALE)


def slot_bound_series(args) -> list[dict]:
    entries = []
    os.environ[INJECT_DELAY_ENV] = str(SLOT_DELAY_MS)
    try:
        for shards in SHARD_COUNTS:
            with tempfile.TemporaryDirectory(
                    prefix="bench-cluster-") as cache:
                with ManagedCluster(shards=shards, jobs=1,
                                    cache_dir=cache, router_cache=256,
                                    replicas=2) as fleet:
                    cold = asyncio.run(
                        _slot_bound_pass(fleet.port, shards, args)
                    )
            entries.append({"shards": shards, "cold": cold.summary()})
            print(f"[slot-bound] shards={shards} "
                  f"cold={entries[-1]['cold']['throughput_rps']}rps",
                  file=sys.stderr)
    finally:
        os.environ.pop(INJECT_DELAY_ENV, None)
    return entries


def hot_key_series(args) -> list[dict]:
    entries = []
    for replicas in (1, 2):
        with tempfile.TemporaryDirectory(prefix="bench-cluster-") as cache:
            with ManagedCluster(shards=4, jobs=1, cache_dir=cache,
                                router_cache=0, replicas=replicas,
                                hot_key_min=8, hot_key_top=4) as fleet:
                client = AsyncServiceClient("127.0.0.1", fleet.port)

                async def run() -> tuple[RunStats, dict]:
                    # Warm the key and cross the hot threshold before
                    # measuring, so the pass is all hot-path serving.
                    for _ in range(40):
                        await client.replay(
                            engine="directory", app="water",
                            policy="basic", cache_size=64 * 1024,
                            scale=args.scale,
                        )
                    stats = await hot_key_loop(
                        client, args.requests * 2, args.concurrency,
                        args.scale,
                    )
                    status = await client.cluster_status()
                    return stats, status

                stats, status = asyncio.run(run())
        forwards = {s["name"]: s["forwards"] for s in status["shards"]}
        serving = sorted(n for n, f in forwards.items() if f > 0)
        entries.append({
            "replicas": replicas,
            "pass": stats.summary(),
            "forwards_by_shard": forwards,
            "shards_serving_the_hot_key": len(serving),
        })
        print(f"[hot-key] replicas={replicas} "
              f"serving_shards={len(serving)} "
              f"rps={entries[-1]['pass']['throughput_rps']}",
              file=sys.stderr)
    return entries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=60,
                        help="requests per pass (default 60)")
    parser.add_argument("--concurrency", type=int, default=24,
                        help="closed-loop workers (default 24)")
    parser.add_argument("--slot-requests", type=int, default=72,
                        help="requests per slot-bound pass (default 72; "
                        "longer than --requests to amortise ramp)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="replay workload scale (default 0.05)")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    host_cpus = os.cpu_count() or 1
    record = {
        "benchmark": "benchmarks/record_cluster.py (repro-cluster "
                     "fleets at 1/2/4/8 shards, jobs=1 per shard)",
        "method": f"closed loop, {args.requests} requests/pass, "
                  f"concurrency {args.concurrency}, scale {args.scale}; "
                  f"slot-bound series injects "
                  f"{SLOT_DELAY_MS} ms per execution via "
                  f"{INJECT_DELAY_ENV}",
        "host_cpus": host_cpus,
        "honesty_note": (
            f"This host has {host_cpus} CPU(s): CPU-bound replays "
            "cannot scale with shard count here, so the zipf series "
            "records contention, not fleet scaling.  The slot-bound "
            "series makes per-shard execution slots the bottleneck "
            "(injected service time), which is the regime sharding "
            "actually targets; read cold-throughput scaling there."
        ),
        "zipf": zipf_series(args),
        "slot_bound": slot_bound_series(args),
        "hot_key": hot_key_series(args),
    }

    slot = {entry["shards"]: entry["cold"]["throughput_rps"]
            for entry in record["slot_bound"]}
    if slot.get(1):
        record["slot_bound_scaling"] = {
            f"x{shards}_vs_x1": round(slot[shards] / slot[1], 2)
            for shards in SHARD_COUNTS if shards in slot
        }

    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[wrote {args.out}]", file=sys.stderr)
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
