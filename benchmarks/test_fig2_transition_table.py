"""Benchmark F2 — regenerate Figure 2 and check it against the paper.

The adaptive snooping protocol's transition tables are derived from the
implementation by probing every (state, event) pair, rendered in the
paper's layout, and compared against the published table.
"""

from conftest import run_once

from repro.experiments import fig2


def test_fig2_regeneration(benchmark):
    text = run_once(benchmark, fig2.render)
    print("\n" + text)
    assert "S2" in text and "MC" in text and "MD" in text


def test_fig2_conformance(benchmark):
    mismatches = run_once(benchmark, fig2.conformance_mismatches)
    assert mismatches == [], mismatches


def test_fig2_covers_every_published_row(benchmark):
    def derive():
        return {(r.state, r.request) for r in fig2.derive_bus_table()}

    derived = run_once(benchmark, derive)
    assert derived == set(fig2.PAPER_BUS_TABLE)
