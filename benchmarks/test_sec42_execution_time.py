"""Benchmark S4.2a — execution-driven timing (Section 4.2).

Times Cholesky, MP3D and Water under the conventional and basic adaptive
protocols with the DASH-flavoured timing model and asserts that the
basic protocol reduces parallel-section execution time by a meaningful
but sub-message-reduction margin (the paper reports 19.3 %, 10.4 % and
3.5 % — dominated by removed write-hit invalidation latency).
"""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.experiments import common, exec_time


def test_execution_time(benchmark):
    def _run():
        common.clear_caches()
        return exec_time.run(scale=BENCH_SCALE, num_procs=BENCH_PROCS)

    rows = run_once(benchmark, _run)
    print("\n" + exec_time.render(rows))
    for row in rows:
        # Positive but far below the ~50 % message bound: compute and
        # cache hits dilute, as in the paper.
        assert 0 < row.time_reduction_pct < 35, row
        assert row.adaptive_cycles < row.base_cycles
        # Read-miss latency does not regress (the paper saw it improve
        # via reduced contention, which our model does not simulate).
        assert (
            row.adaptive_read_miss_latency
            <= row.base_read_miss_latency * 1.05
        ), row
