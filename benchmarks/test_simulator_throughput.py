"""Micro-benchmarks: simulator throughput (accesses per second).

Not a paper artifact — these time the simulation engines themselves so
regressions in the hot paths (cache lookup, directory dispatch, snoop
loops) are visible.  Unlike the table benchmarks these use multiple
rounds, since they are cheap.

``TRACE`` is a packable :class:`repro.trace.core.Trace`, so the machine
``run`` loops take the packed columnar fast path; the ``*_unpacked``
variants feed the same accesses as a plain list, timing the generic
per-``Access`` path for comparison.  ``benchmarks/record_throughput.py``
runs the same workload standalone and records the packed-vs-baseline
speedup in ``BENCH_throughput.json``.
"""

from repro.common.config import CacheConfig, MachineConfig
from repro.directory.policy import AGGRESSIVE, CONVENTIONAL
from repro.experiments import table2
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import AdaptiveSnoopingProtocol
from repro.system.machine import DirectoryMachine
from repro.trace import synth

CFG = MachineConfig(
    num_procs=16, cache=CacheConfig(size_bytes=64 * 1024, block_size=16)
)

TRACE = synth.interleave(
    [
        synth.migratory(num_procs=16, num_objects=16, visits=50, seed=1),
        synth.read_shared(num_procs=16, num_objects=16, rounds=20,
                          base=1 << 20, seed=2),
    ],
    chunk=8,
    seed=3,
)

#: The same accesses as a plain list: machines fall back to the generic
#: per-Access loop (no ``pack()`` attribute to dispatch on).
UNPACKED = list(TRACE)

# Resolve the packed columns once so every timed round measures replay,
# not the one-time packing cost.
TRACE.pack().blocks_column(CFG.cache.block_size.bit_length() - 1)

#: Small table2 slice for the parallel-vs-serial harness benchmarks.
_T2_KWARGS = dict(
    apps=("mp3d", "water"),
    cache_sizes=(16 * 1024, 64 * 1024),
    scale=0.1,
)


def test_directory_machine_throughput(benchmark):
    def run():
        machine = DirectoryMachine(CFG, AGGRESSIVE)
        machine.run(TRACE)
        return machine.stats.total

    total = benchmark(run)
    assert total > 0


def test_directory_machine_unpacked_throughput(benchmark):
    def run():
        machine = DirectoryMachine(CFG, AGGRESSIVE)
        machine.run(UNPACKED)
        return machine.stats.total

    total = benchmark(run)
    # The packed fast path must not change the statistics.
    packed = DirectoryMachine(CFG, AGGRESSIVE)
    packed.run(TRACE)
    assert total == packed.stats.total


def test_directory_machine_conventional_throughput(benchmark):
    def run():
        machine = DirectoryMachine(CFG, CONVENTIONAL)
        machine.run(TRACE)
        return machine.stats.total

    total = benchmark(run)
    assert total > 0


def test_bus_machine_throughput(benchmark):
    def run():
        machine = BusMachine(CFG, AdaptiveSnoopingProtocol())
        machine.run(TRACE)
        return machine.bus_stats.total

    total = benchmark(run)
    assert total > 0


def test_bus_machine_unpacked_throughput(benchmark):
    def run():
        machine = BusMachine(CFG, AdaptiveSnoopingProtocol())
        machine.run(UNPACKED)
        return machine.bus_stats.total

    total = benchmark(run)
    packed = BusMachine(CFG, AdaptiveSnoopingProtocol())
    packed.run(TRACE)
    assert total == packed.bus_stats.total


def test_table2_serial_throughput(benchmark):
    def run():
        return table2.run(jobs=1, **_T2_KWARGS)

    rows = benchmark(run)
    assert len(rows) == 4


def test_table2_parallel_throughput(benchmark):
    def run():
        return table2.run(jobs=2, **_T2_KWARGS)

    rows = benchmark(run)
    # Fan-out must merge to exactly the serial result.
    assert rows == table2.run(jobs=1, **_T2_KWARGS)


def test_trace_generation_throughput(benchmark):
    def run():
        return len(synth.migratory(num_procs=16, num_objects=8, visits=100,
                                   seed=7))

    length = benchmark(run)
    assert length > 0
