"""Micro-benchmarks: simulator throughput (accesses per second).

Not a paper artifact — these time the simulation engines themselves so
regressions in the hot paths (cache lookup, directory dispatch, snoop
loops) are visible.  Unlike the table benchmarks these use multiple
rounds, since they are cheap.
"""

from repro.common.config import CacheConfig, MachineConfig
from repro.directory.policy import AGGRESSIVE, CONVENTIONAL
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import AdaptiveSnoopingProtocol
from repro.system.machine import DirectoryMachine
from repro.trace import synth

CFG = MachineConfig(
    num_procs=16, cache=CacheConfig(size_bytes=64 * 1024, block_size=16)
)

TRACE = synth.interleave(
    [
        synth.migratory(num_procs=16, num_objects=16, visits=50, seed=1),
        synth.read_shared(num_procs=16, num_objects=16, rounds=20,
                          base=1 << 20, seed=2),
    ],
    chunk=8,
    seed=3,
)


def test_directory_machine_throughput(benchmark):
    def run():
        machine = DirectoryMachine(CFG, AGGRESSIVE)
        machine.run(TRACE)
        return machine.stats.total

    total = benchmark(run)
    assert total > 0


def test_directory_machine_conventional_throughput(benchmark):
    def run():
        machine = DirectoryMachine(CFG, CONVENTIONAL)
        machine.run(TRACE)
        return machine.stats.total

    total = benchmark(run)
    assert total > 0


def test_bus_machine_throughput(benchmark):
    def run():
        machine = BusMachine(CFG, AdaptiveSnoopingProtocol())
        machine.run(TRACE)
        return machine.bus_stats.total

    total = benchmark(run)
    assert total > 0


def test_trace_generation_throughput(benchmark):
    def run():
        return len(synth.migratory(num_procs=16, num_objects=8, visits=100,
                                   seed=7))

    length = benchmark(run)
    assert length > 0
