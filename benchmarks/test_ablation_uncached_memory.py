"""Benchmark A2 — remembering classification across uncached intervals.

The paper's directory protocols retain a block's migratory classification
while it is uncached, so a reloaded migratory block arrives with write
permission ("particularly useful in systems with small caches").  This
ablation compares remember vs forget with 4-KByte caches, plus the
eviction-notification trade (A3).
"""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.experiments import ablations, common


def test_uncached_memory(benchmark):
    def _run():
        common.clear_caches()
        return ablations.uncached_memory(
            scale=BENCH_SCALE, num_procs=BENCH_PROCS
        )

    rows = run_once(benchmark, _run)
    print("\n" + ablations.render(
        rows, "A2: classification memory across uncached intervals"
    ))
    by_app = {}
    for row in rows:
        by_app.setdefault(row.app, {})[row.variant] = row.total
    for app, variants in by_app.items():
        assert variants["remember"] <= variants["forget"] * 1.01, app
        assert variants["remember"] <= variants["conventional"], app


def test_eviction_notifications(benchmark):
    def _run():
        return ablations.eviction_notifications(
            scale=BENCH_SCALE, num_procs=BENCH_PROCS
        )

    rows = run_once(benchmark, _run)
    print("\n" + ablations.render(
        rows, "A3: eviction notifications vs silent clean drops"
    ))
    assert {r.variant for r in rows} == {"notify", "silent-drop"}
    for row in rows:
        assert row.total > 0
