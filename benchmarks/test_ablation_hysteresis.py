"""Benchmark A1 — hysteresis-depth ablation.

The paper's conclusion: "for small cache block sizes there is no
advantage in being conservative."  This ablation sweeps the evidence
threshold from 1 (basic/aggressive) through 4 and checks that deeper
hysteresis never helps at 16-byte blocks.
"""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.experiments import ablations, common


def test_hysteresis_sweep(benchmark):
    def _run():
        common.clear_caches()
        return ablations.hysteresis_sweep(
            scale=BENCH_SCALE, num_procs=BENCH_PROCS
        )

    rows = run_once(benchmark, _run)
    print("\n" + ablations.render(rows, "A1: hysteresis depth"))

    by_app = {}
    for row in rows:
        by_app.setdefault(row.app, {})[row.variant] = row.total
    for app, variants in by_app.items():
        # Deeper hysteresis is monotonically (weakly) worse...
        assert variants["threshold-1"] <= variants["threshold-2"] * 1.01, app
        assert variants["threshold-2"] <= variants["threshold-3"] * 1.01, app
        assert variants["threshold-3"] <= variants["threshold-4"] * 1.01, app
        # ...but even threshold-4 still beats no adaptation.
        assert variants["threshold-4"] <= variants["conventional"], app
