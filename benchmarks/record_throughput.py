"""Record simulator throughput before/after numbers.

Measures the directory- and bus-machine trace-replay benchmark (the same
workload as ``test_simulator_throughput.py``) on the current tree —
table-driven kernel, packed fast path (kernels disabled via
``REPRO_NO_KERNEL``), and generic per-``Access`` path — and writes the
results to ``BENCH_throughput.json``.

Two extra sections cover the widened kernel envelope:

* ``*_evicting`` rows re-run the kernel-vs-packed comparison on a
  finite 256-byte 4-way cache whose conflict sets force real
  evictions, so the eviction-aware group walks (not the conflict-free
  per-block walks) carry the replay.
* the ``streaming`` section replays a million-block trace fed chunk by
  chunk from a generator through the streaming backend, recording the
  feed-phase allocation peak next to the batch path's peak (which must
  materialise the whole trace first).  Skip it with ``--no-stream``
  (the previously recorded section is carried forward).

Each configuration is timed in its own subprocess (min over
``--rounds`` process launches of the min over ``--reps`` in-process
repetitions), and configurations are interleaved across rounds so slow
periods of a noisy machine hit every configuration equally.

To refresh the pre-optimization baseline, point ``--baseline-src`` at a
checkout of the code to compare against (e.g. a git worktree of the
commit before the packed-trace work)::

    python benchmarks/record_throughput.py --baseline-src /path/to/old/src

Without ``--baseline-src`` the previously recorded ``before`` section of
``BENCH_throughput.json`` is carried forward unchanged.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_PATH = REPO / "BENCH_throughput.json"

#: Number of accesses in the benchmark trace (for throughput figures).
_TIMER_BODY = r'''
import sys, time
sys.path.insert(0, sys.argv[1])
machine_kind, representation, reps = sys.argv[2], sys.argv[3], int(sys.argv[4])
geometry = sys.argv[5] if len(sys.argv) > 5 else "base"
from repro.common.config import CacheConfig, MachineConfig
from repro.trace import synth

# "evicting" shrinks the caches to 16 lines over 4 sets: with 32
# distinct blocks in the trace every set conflicts, so the replay has
# to take the eviction-aware group walks.
size_bytes = 64 * 1024 if geometry == "base" else 256
CFG = MachineConfig(num_procs=16,
                    cache=CacheConfig(size_bytes=size_bytes, block_size=16))
TRACE = synth.interleave(
    [synth.migratory(num_procs=16, num_objects=16, visits=50, seed=1),
     synth.read_shared(num_procs=16, num_objects=16, rounds=20,
                       base=1 << 20, seed=2)],
    chunk=8, seed=3)

if representation == "unpacked":
    trace = list(TRACE)
else:
    trace = TRACE
    pack = getattr(TRACE, "pack", None)
    if pack is not None:  # resolve columns outside the timed region
        packed = pack()
        packed.blocks_column(4)
        split = getattr(packed, "block_sequences", None)
        if split is not None:
            split(4)
    if representation == "packed":
        # Pin the legacy packed loop so the row measures it, not the
        # table-driven kernel (older trees ignore the variable).
        import os
        os.environ["REPRO_NO_KERNEL"] = "1"

if machine_kind == "directory":
    from repro.directory.policy import AGGRESSIVE
    from repro.system.machine import DirectoryMachine
    make = lambda: DirectoryMachine(CFG, AGGRESSIVE)
else:
    from repro.snooping.machine import BusMachine
    from repro.snooping.protocols import AdaptiveSnoopingProtocol
    make = lambda: BusMachine(CFG, AdaptiveSnoopingProtocol())

make().run(trace)  # warm-up
best = float("inf")
for _ in range(reps):
    machine = make()
    t0 = time.perf_counter()
    machine.run(trace)
    best = min(best, time.perf_counter() - t0)
print(f"{len(TRACE)} {best}")
'''


_STREAM_BODY = r'''
import json, sys, time, tracemalloc
sys.path.insert(0, sys.argv[1])
mode = sys.argv[2]
from array import array
from repro.common.config import CacheConfig, MachineConfig
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import AdaptiveSnoopingProtocol
from repro.trace.packed import PackedTrace

BLOCKS, TOTAL, CHUNK = 1_000_000, 4_000_000, 65_536
CFG = MachineConfig(num_procs=16,
                    cache=CacheConfig(size_bytes=None, block_size=16))


def columns(start, count):
    span = range(start, start + count)
    return (array("q", [(i * 7) % 16 for i in span]),
            array("b", [1 if i % 3 == 0 else 0 for i in span]),
            array("q", [(i % BLOCKS) * 16 for i in span]))


machine = BusMachine(CFG, AdaptiveSnoopingProtocol())
if mode == "stream":
    # The trace never exists in full: each chunk is synthesized, fed,
    # and dropped.  The feed-phase peak is the streaming claim; the
    # total peak adds finish()'s machine line objects, which every
    # replay path pays.
    from repro.kernels.streaming import BusStreamReplay
    replay = BusStreamReplay(machine)
    tracemalloc.start()
    started = time.perf_counter()
    for start in range(0, TOTAL, CHUNK):
        replay.feed(PackedTrace(*columns(start, min(CHUNK, TOTAL - start))))
    feed_peak = tracemalloc.get_traced_memory()[1]
    replay.finish()
    elapsed = time.perf_counter() - started
    total_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    out = {"seconds": elapsed, "feed_peak": feed_peak,
           "total_peak": total_peak}
else:
    # Batch path: the whole packed trace is materialised first, then
    # replayed by the batch kernel; its peak includes the trace.
    tracemalloc.start()
    started = time.perf_counter()
    packed = PackedTrace(*columns(0, TOTAL))
    machine.run(packed)
    elapsed = time.perf_counter() - started
    total_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    out = {"seconds": elapsed, "total_peak": total_peak}
stats = machine.cache_stats
covered = (stats.read_hits + stats.read_misses
           + stats.write_hits + stats.write_misses)
if covered != TOTAL:
    raise SystemExit(f"replay covered {covered} of {TOTAL} accesses")
print(json.dumps(out))
'''


def measure_streaming(src: Path) -> dict:
    """One-shot streaming-vs-batch replay of the million-block trace."""
    results = {}
    for mode in ("stream", "batch"):
        out = subprocess.run(
            [sys.executable, "-c", _STREAM_BODY, str(src), mode],
            capture_output=True, text=True, check=True,
        )
        results[mode] = json.loads(out.stdout)
    mb = 1024 * 1024
    return {
        "workload": "bus machine, 1,000,000 blocks x 4,000,000 accesses, "
                    "fed in 65,536-access chunks from a generator",
        "trace_mb": round(17 * 4_000_000 / mb, 1),
        "stream_seconds": round(results["stream"]["seconds"], 2),
        "stream_feed_peak_mb": round(results["stream"]["feed_peak"] / mb, 1),
        "stream_total_peak_mb": round(
            results["stream"]["total_peak"] / mb, 1),
        "batch_seconds": round(results["batch"]["seconds"], 2),
        "batch_peak_mb": round(results["batch"]["total_peak"] / mb, 1),
        "batch_vs_stream_feed_peak": round(
            results["batch"]["total_peak"]
            / results["stream"]["feed_peak"], 2),
        "note": "feed peak holds per-block continuation nodes (the "
                "million-block floor) but never the trace itself; total "
                "peaks add the machine's own final line objects, common "
                "to both paths",
    }


def time_config(src: Path, machine: str, representation: str,
                reps: int, geometry: str = "base") -> tuple[int, float]:
    """Best wall time for one (source tree, machine, representation)."""
    out = subprocess.run(
        [sys.executable, "-c", _TIMER_BODY, str(src), machine,
         representation, str(reps), geometry],
        capture_output=True, text=True, check=True,
    )
    accesses, best = out.stdout.split()
    return int(accesses), float(best)


def measure(src: Path, configs: list[tuple[str, str, str]], rounds: int,
            reps: int) -> dict:
    """Interleaved min-of-rounds measurement of every configuration."""
    best: dict[tuple[str, str, str], float] = {c: float("inf")
                                               for c in configs}
    accesses = 0
    for _ in range(rounds):
        for config in configs:
            accesses, elapsed = time_config(src, *config[:2], reps=reps,
                                            geometry=config[2])
            best[config] = min(best[config], elapsed)
    result = {"accesses": accesses}
    for (machine, representation, geometry), elapsed in best.items():
        key = f"{machine}_{representation}"
        if geometry != "base":
            key = f"{key}_{geometry}"
        result[f"{key}_ms"] = round(elapsed * 1e3, 3)
        result[f"{key}_accesses_per_s"] = round(accesses / elapsed)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=6,
                        help="interleaved process launches per config")
    parser.add_argument("--reps", type=int, default=10,
                        help="in-process repetitions per launch")
    parser.add_argument("--baseline-src", type=Path, default=None,
                        help="src/ of the pre-optimization tree to "
                        "re-measure as the 'before' section")
    parser.add_argument("--no-stream", action="store_true",
                        help="skip the million-block streaming replay "
                        "and carry the recorded section forward")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    configs = [("directory", "kernel", "base"),
               ("directory", "packed", "base"),
               ("directory", "unpacked", "base"),
               ("bus", "kernel", "base"),
               ("bus", "packed", "base"),
               ("bus", "unpacked", "base"),
               ("directory", "kernel", "evicting"),
               ("directory", "packed", "evicting"),
               ("bus", "kernel", "evicting"),
               ("bus", "packed", "evicting")]

    previous = {}
    if args.out.exists():
        previous = json.loads(args.out.read_text())

    after = measure(REPO / "src", configs, args.rounds, args.reps)

    if args.baseline_src is not None:
        # The old tree has no packed representation; both labels run the
        # generic loop, so measure it once under the 'unpacked' label.
        base = measure(args.baseline_src,
                       [("directory", "unpacked", "base"),
                        ("bus", "unpacked", "base")],
                       args.rounds, args.reps)
        before = {
            "accesses": base["accesses"],
            "directory_ms": base["directory_unpacked_ms"],
            "directory_accesses_per_s": base["directory_unpacked_accesses_per_s"],
            "bus_ms": base["bus_unpacked_ms"],
            "bus_accesses_per_s": base["bus_unpacked_accesses_per_s"],
        }
    else:
        before = previous.get("before", {})

    if args.no_stream:
        streaming = previous.get("streaming", {})
    else:
        streaming = measure_streaming(REPO / "src")

    record = {
        "benchmark": "benchmarks/test_simulator_throughput.py "
                     "(16 procs, 64K caches, 16-byte blocks, "
                     "migratory+read_shared interleave; _evicting rows "
                     "rerun on 256-byte 4-way caches)",
        "method": f"min over {args.rounds} interleaved subprocess rounds "
                  f"of min-of-{args.reps} in-process repetitions",
        "before": before,
        "after": after,
        "streaming": streaming,
    }
    record["speedup"] = {
        "directory_kernel_vs_packed": round(
            after["directory_packed_ms"] / after["directory_kernel_ms"], 2),
        "bus_kernel_vs_packed": round(
            after["bus_packed_ms"] / after["bus_kernel_ms"], 2),
        "directory_packed_vs_unpacked": round(
            after["directory_unpacked_ms"] / after["directory_packed_ms"], 2),
        "bus_packed_vs_unpacked": round(
            after["bus_unpacked_ms"] / after["bus_packed_ms"], 2),
        "directory_kernel_vs_packed_evicting": round(
            after["directory_packed_evicting_ms"]
            / after["directory_kernel_evicting_ms"], 2),
        "bus_kernel_vs_packed_evicting": round(
            after["bus_packed_evicting_ms"]
            / after["bus_kernel_evicting_ms"], 2),
    }
    if before:
        record["speedup"].update({
            "directory_packed_vs_before": round(
                before["directory_ms"] / after["directory_packed_ms"], 2),
            "bus_packed_vs_before": round(
                before["bus_ms"] / after["bus_packed_ms"], 2),
            "directory_kernel_vs_before": round(
                before["directory_ms"] / after["directory_kernel_ms"], 2),
            "bus_kernel_vs_before": round(
                before["bus_ms"] / after["bus_kernel_ms"], 2),
        })
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
