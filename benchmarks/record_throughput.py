"""Record simulator throughput before/after numbers.

Measures the directory- and bus-machine trace-replay benchmark (the same
workload as ``test_simulator_throughput.py``) on the current tree —
table-driven kernel, packed fast path (kernels disabled via
``REPRO_NO_KERNEL``), and generic per-``Access`` path — and writes the
results to ``BENCH_throughput.json``.

Each configuration is timed in its own subprocess (min over
``--rounds`` process launches of the min over ``--reps`` in-process
repetitions), and configurations are interleaved across rounds so slow
periods of a noisy machine hit every configuration equally.

To refresh the pre-optimization baseline, point ``--baseline-src`` at a
checkout of the code to compare against (e.g. a git worktree of the
commit before the packed-trace work)::

    python benchmarks/record_throughput.py --baseline-src /path/to/old/src

Without ``--baseline-src`` the previously recorded ``before`` section of
``BENCH_throughput.json`` is carried forward unchanged.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_PATH = REPO / "BENCH_throughput.json"

#: Number of accesses in the benchmark trace (for throughput figures).
_TIMER_BODY = r'''
import sys, time
sys.path.insert(0, sys.argv[1])
machine_kind, representation, reps = sys.argv[2], sys.argv[3], int(sys.argv[4])
from repro.common.config import CacheConfig, MachineConfig
from repro.trace import synth

CFG = MachineConfig(num_procs=16,
                    cache=CacheConfig(size_bytes=64 * 1024, block_size=16))
TRACE = synth.interleave(
    [synth.migratory(num_procs=16, num_objects=16, visits=50, seed=1),
     synth.read_shared(num_procs=16, num_objects=16, rounds=20,
                       base=1 << 20, seed=2)],
    chunk=8, seed=3)

if representation == "unpacked":
    trace = list(TRACE)
else:
    trace = TRACE
    pack = getattr(TRACE, "pack", None)
    if pack is not None:  # resolve columns outside the timed region
        packed = pack()
        packed.blocks_column(4)
        split = getattr(packed, "block_sequences", None)
        if split is not None:
            split(4)
    if representation == "packed":
        # Pin the legacy packed loop so the row measures it, not the
        # table-driven kernel (older trees ignore the variable).
        import os
        os.environ["REPRO_NO_KERNEL"] = "1"

if machine_kind == "directory":
    from repro.directory.policy import AGGRESSIVE
    from repro.system.machine import DirectoryMachine
    make = lambda: DirectoryMachine(CFG, AGGRESSIVE)
else:
    from repro.snooping.machine import BusMachine
    from repro.snooping.protocols import AdaptiveSnoopingProtocol
    make = lambda: BusMachine(CFG, AdaptiveSnoopingProtocol())

make().run(trace)  # warm-up
best = float("inf")
for _ in range(reps):
    machine = make()
    t0 = time.perf_counter()
    machine.run(trace)
    best = min(best, time.perf_counter() - t0)
print(f"{len(TRACE)} {best}")
'''


def time_config(src: Path, machine: str, representation: str,
                reps: int) -> tuple[int, float]:
    """Best wall time for one (source tree, machine, representation)."""
    out = subprocess.run(
        [sys.executable, "-c", _TIMER_BODY, str(src), machine,
         representation, str(reps)],
        capture_output=True, text=True, check=True,
    )
    accesses, best = out.stdout.split()
    return int(accesses), float(best)


def measure(src: Path, configs: list[tuple[str, str]], rounds: int,
            reps: int) -> dict:
    """Interleaved min-of-rounds measurement of every configuration."""
    best: dict[tuple[str, str], float] = {c: float("inf") for c in configs}
    accesses = 0
    for _ in range(rounds):
        for config in configs:
            accesses, elapsed = time_config(src, *config, reps=reps)
            best[config] = min(best[config], elapsed)
    result = {"accesses": accesses}
    for (machine, representation), elapsed in best.items():
        key = f"{machine}_{representation}"
        result[f"{key}_ms"] = round(elapsed * 1e3, 3)
        result[f"{key}_accesses_per_s"] = round(accesses / elapsed)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=6,
                        help="interleaved process launches per config")
    parser.add_argument("--reps", type=int, default=10,
                        help="in-process repetitions per launch")
    parser.add_argument("--baseline-src", type=Path, default=None,
                        help="src/ of the pre-optimization tree to "
                        "re-measure as the 'before' section")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    configs = [("directory", "kernel"), ("directory", "packed"),
               ("directory", "unpacked"),
               ("bus", "kernel"), ("bus", "packed"), ("bus", "unpacked")]

    previous = {}
    if args.out.exists():
        previous = json.loads(args.out.read_text())

    after = measure(REPO / "src", configs, args.rounds, args.reps)

    if args.baseline_src is not None:
        # The old tree has no packed representation; both labels run the
        # generic loop, so measure it once under the 'unpacked' label.
        base = measure(args.baseline_src,
                       [("directory", "unpacked"), ("bus", "unpacked")],
                       args.rounds, args.reps)
        before = {
            "accesses": base["accesses"],
            "directory_ms": base["directory_unpacked_ms"],
            "directory_accesses_per_s": base["directory_unpacked_accesses_per_s"],
            "bus_ms": base["bus_unpacked_ms"],
            "bus_accesses_per_s": base["bus_unpacked_accesses_per_s"],
        }
    else:
        before = previous.get("before", {})

    record = {
        "benchmark": "benchmarks/test_simulator_throughput.py "
                     "(16 procs, 64K caches, 16-byte blocks, "
                     "migratory+read_shared interleave)",
        "method": f"min over {args.rounds} interleaved subprocess rounds "
                  f"of min-of-{args.reps} in-process repetitions",
        "before": before,
        "after": after,
    }
    record["speedup"] = {
        "directory_kernel_vs_packed": round(
            after["directory_packed_ms"] / after["directory_kernel_ms"], 2),
        "bus_kernel_vs_packed": round(
            after["bus_packed_ms"] / after["bus_kernel_ms"], 2),
        "directory_packed_vs_unpacked": round(
            after["directory_unpacked_ms"] / after["directory_packed_ms"], 2),
        "bus_packed_vs_unpacked": round(
            after["bus_unpacked_ms"] / after["bus_packed_ms"], 2),
    }
    if before:
        record["speedup"].update({
            "directory_packed_vs_before": round(
                before["directory_ms"] / after["directory_packed_ms"], 2),
            "bus_packed_vs_before": round(
                before["bus_ms"] / after["bus_packed_ms"], 2),
            "directory_kernel_vs_before": round(
                before["directory_ms"] / after["directory_kernel_ms"], 2),
            "bus_kernel_vs_before": round(
                before["bus_ms"] / after["bus_kernel_ms"], 2),
        })
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
