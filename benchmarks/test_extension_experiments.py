"""Benchmarks R3/R4/R5/R7 — extension experiments.

* R3: software prefetching vs adaptive coherence (Mowry & Gupta).
* R4: limited-pointer directories (Dir_iB / Dir_iNB).
* R5: network-topology latency scaling.
* R7: write-run characterization of the five analogues.
"""

from conftest import BENCH_PROCS, BENCH_SCALE, run_once

from repro.analysis.writeruns import render_write_runs, write_run_stats
from repro.experiments import common, limited_dir, prefetch, topology
from repro.workloads.profiles import APP_ORDER


def test_prefetch_comparison(benchmark):
    def _run():
        common.clear_caches()
        return prefetch.run(scale=BENCH_SCALE, num_procs=BENCH_PROCS)

    rows = run_once(benchmark, _run)
    print("\n" + prefetch.render(rows))
    for row in rows:
        assert row.adaptive < row.conventional
        # prefetching hides read-miss latency adaptation cannot touch
        assert row.prefetch < row.adaptive, row
        assert row.prefetch_exclusive <= row.prefetch, row


def test_limited_directories(benchmark):
    def _run():
        common.clear_caches()
        return limited_dir.run(
            apps=("mp3d", "pthor", "locusroute"),
            scale=BENCH_SCALE,
            num_procs=BENCH_PROCS,
        )

    rows = run_once(benchmark, _run)
    print("\n" + limited_dir.render(rows))
    by_app = {}
    for row in rows:
        by_app.setdefault(row.app, {})[row.representation] = row
    for app, reps in by_app.items():
        full = reps["full-map"]
        for name, row in reps.items():
            # limited directories never reduce absolute traffic...
            assert row.conventional_total >= full.conventional_total, (
                app, name,
            )
            # ...and the adaptive advantage survives every scheme.
            assert row.reduction_pct > full.reduction_pct - 3.0, (app, name)
    # migratory blocks never overflow: MP3D is representation-invariant
    mp3d = by_app["mp3d"]
    assert (
        mp3d["dir4B"].conventional_total
        == mp3d["full-map"].conventional_total
    )


def test_topology_scaling(benchmark):
    def _run():
        common.clear_caches()
        return topology.run(
            apps=("mp3d",), scale=BENCH_SCALE, num_procs=BENCH_PROCS
        )

    rows = run_once(benchmark, _run)
    print("\n" + topology.render(rows))
    reductions = [r.time_reduction_pct for r in rows]
    assert reductions == sorted(reductions)  # grows with avg hops


def test_write_run_census(benchmark):
    def _run():
        common.clear_caches()
        return {
            app: write_run_stats(
                common.get_trace(app, BENCH_PROCS, 0, BENCH_SCALE), 16
            )
            for app in APP_ORDER
        }

    stats = run_once(benchmark, _run)
    print("\n" + render_write_runs(stats, "R7: write-run census"))
    # The migratory signature: MP3D and Cholesky hand each datum to
    # exactly one consumer per run.
    assert stats["mp3d"].mean_external_rereads < 1.2
    assert stats["cholesky"].mean_external_rereads < 1.2
    # The mixed applications have wider consumption.
    assert stats["pthor"].mean_external_rereads > 1.3
    assert stats["locusroute"].mean_external_rereads > 1.3
