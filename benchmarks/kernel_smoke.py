"""CI kernel smoke: the table-driven kernels must engage, win, and agree.

Replays the throughput-benchmark workload three ways per machine —
table-driven kernel (:mod:`repro.kernels`), legacy packed loop (kernel
pinned off via :func:`registry.disabled`), and the generic per-access
object engine — and asserts the two contracts the kernels ship under:

* **perf**: the kernel replay is no slower than the legacy packed loop
  it shadows (it is ~20-40x faster in practice; asserting ``<=`` keeps
  the check immune to CI noise while still catching an engagement
  regression, because a silently falling-back kernel run *is* a packed
  run plus gate overhead).
* **determinism**: every statistic the kernel run produces — message
  and bus counters with their per-cause/per-kind breakdowns, cache
  event counters, invalidation-size histograms, classification
  transitions — is byte-identical to the object engine's on the same
  fixed seeded trace.

Both contracts are checked twice per machine: once on the infinite
64K-cache throughput geometry and once on a finite 256-byte cache
whose conflict sets force real evictions through the eviction-aware
group walks (the run is rejected if no eviction actually happened).
A final pass replays the same packed trace through the streaming
backend at several chunk sizes and diffs the results against the
batch kernel — chunk boundaries must be unobservable.

Run from the repository root::

    python benchmarks/kernel_smoke.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.common.config import CacheConfig, MachineConfig  # noqa: E402
from repro.directory.policy import AGGRESSIVE  # noqa: E402
from repro.kernels import registry  # noqa: E402
from repro.kernels.streaming import replay_stream  # noqa: E402
from repro.snooping.machine import BusMachine  # noqa: E402
from repro.snooping.protocols import AdaptiveSnoopingProtocol  # noqa: E402
from repro.system.machine import DirectoryMachine  # noqa: E402
from repro.trace import synth  # noqa: E402

#: In-process repetitions per timing (min is reported).
REPS = 5

CFG = MachineConfig(num_procs=16,
                    cache=CacheConfig(size_bytes=64 * 1024, block_size=16))

#: 16 lines over 4 sets, 32 distinct blocks in the trace: every set is
#: a conflict set and the replay has to take the eviction-aware walks.
EVICT_CFG = MachineConfig(num_procs=16,
                          cache=CacheConfig(size_bytes=256, block_size=16))

#: The streaming backend only covers infinite caches (a segment-local
#: view cannot prove a finite cache never evicts), so its determinism
#: pass runs on the same workload with caches uncapped.
STREAM_CFG = MachineConfig(num_procs=16,
                           cache=CacheConfig(size_bytes=None, block_size=16))

#: Chunk sizes for the streaming determinism pass (one splits blocks'
#: access sequences mid-stream, one is a few large segments).
STREAM_CHUNKS = (257, 4096)


def _trace():
    return synth.interleave(
        [synth.migratory(num_procs=16, num_objects=16, visits=50, seed=1),
         synth.read_shared(num_procs=16, num_objects=16, rounds=20,
                           base=1 << 20, seed=2)],
        chunk=8, seed=3)


def _best(make, trace) -> float:
    best = float("inf")
    for _ in range(REPS):
        machine = make()
        started = time.perf_counter()
        machine.run(trace)
        best = min(best, time.perf_counter() - started)
    return best


def _check_machine(name, make, trace, stats_of, *, label=None,
                   require_evictions=False) -> list[str]:
    """Time kernel vs packed and diff kernel stats against the object
    engine; returns failure descriptions (empty = clean)."""
    problems = []
    label = label or name

    registry.engagements.clear()
    kernel_machine = make()
    kernel_machine.run(trace)
    if registry.engagements[name] != 1:
        problems.append(f"{label}: kernel did not engage on the benchmark "
                        f"workload (engagements={dict(registry.engagements)})")
    if require_evictions:
        evictions = (kernel_machine.cache_stats.evictions_dirty
                     + kernel_machine.cache_stats.evictions_clean)
        if not evictions:
            problems.append(f"{label}: finite-cache geometry produced no "
                            "evictions — the check is vacuous")
    kernel_seconds = _best(make, trace)

    with registry.disabled():
        packed_seconds = _best(make, trace)

    print(f"{label}: kernel {kernel_seconds * 1e3:.3f}ms  "
          f"packed {packed_seconds * 1e3:.3f}ms  "
          f"({packed_seconds / kernel_seconds:.1f}x)")
    if kernel_seconds > packed_seconds:
        problems.append(
            f"{label}: kernel replay ({kernel_seconds * 1e3:.3f}ms) slower "
            f"than the legacy packed loop ({packed_seconds * 1e3:.3f}ms)")

    generic_machine = make()
    generic_machine.run(list(trace))  # a plain list has no pack()
    for field, kernel_value, generic_value in stats_of(kernel_machine,
                                                       generic_machine):
        if kernel_value != generic_value:
            problems.append(f"{label}: {field}: kernel={kernel_value!r} "
                            f"object-engine={generic_value!r}")
    return problems


def _check_streaming(name, make, packed, stats_of) -> list[str]:
    """Replay chunked through the streaming backend at every chunk size
    and diff against the batch kernel — results must be identical."""
    problems = []
    batch = make()
    batch.run(packed)
    for chunk in STREAM_CHUNKS:
        registry.engagements.clear()
        registry.fallbacks.clear()
        machine = make()
        replay_stream(machine, packed, chunk=chunk)
        if registry.engagements[f"{name}-stream"] != 1 or registry.fallbacks:
            problems.append(
                f"{name}-stream(chunk={chunk}): did not engage "
                f"(engagements={dict(registry.engagements)}, "
                f"fallbacks={dict(registry.fallbacks)})")
        for field, stream_value, batch_value in stats_of(machine, batch):
            if stream_value != batch_value:
                problems.append(
                    f"{name}-stream(chunk={chunk}): {field}: "
                    f"stream={stream_value!r} batch={batch_value!r}")
    if not problems:
        print(f"{name}-stream: chunks {STREAM_CHUNKS} all match batch")
    return problems


def _directory_stats(a, b):
    return [
        ("stats.short", a.stats.short, b.stats.short),
        ("stats.data", a.stats.data, b.stats.data),
        ("by_cause_short", a.stats.by_cause_short, b.stats.by_cause_short),
        ("by_cause_data", a.stats.by_cause_data, b.stats.by_cause_data),
        ("cache_stats", a.cache_stats, b.cache_stats),
        ("invalidation_sizes", a.invalidation_sizes, b.invalidation_sizes),
        ("transitions", a.protocol.transitions, b.protocol.transitions),
    ]


def _bus_stats(a, b):
    return [
        ("bus_stats", a.bus_stats, b.bus_stats),
        ("by_kind", a.bus_stats.by_kind, b.bus_stats.by_kind),
        ("cache_stats", a.cache_stats, b.cache_stats),
    ]


def main() -> int:
    trace = _trace()
    # Resolve the packed columns once so neither timing pays for packing.
    packed = trace.pack()
    packed.blocks_column(4)
    packed.block_sequences(4)

    problems = _check_machine(
        "directory", lambda: DirectoryMachine(CFG, AGGRESSIVE), trace,
        _directory_stats,
    )
    problems += _check_machine(
        "bus", lambda: BusMachine(CFG, AdaptiveSnoopingProtocol()), trace,
        _bus_stats,
    )
    problems += _check_machine(
        "directory", lambda: DirectoryMachine(EVICT_CFG, AGGRESSIVE), trace,
        _directory_stats, label="directory-evicting", require_evictions=True,
    )
    problems += _check_machine(
        "bus", lambda: BusMachine(EVICT_CFG, AdaptiveSnoopingProtocol()),
        trace, _bus_stats, label="bus-evicting", require_evictions=True,
    )
    problems += _check_streaming(
        "directory", lambda: DirectoryMachine(STREAM_CFG, AGGRESSIVE),
        packed, _directory_stats,
    )
    problems += _check_streaming(
        "bus", lambda: BusMachine(STREAM_CFG, AdaptiveSnoopingProtocol()),
        packed, _bus_stats,
    )
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
