"""Benchmark T1 — regenerate Table 1 (the message-cost model).

Table 1 is pure model, so this benchmark renders it, checks a handful of
its arithmetic identities, and times the charge function itself (it is on
the hot path of every simulated cache operation).
"""

from conftest import run_once

from repro.interconnect.costs import (
    Charge,
    OpClass,
    render_table1,
    table1_charge,
)


def test_table1_render(benchmark):
    text = run_once(benchmark, render_table1)
    print("\n" + text)
    assert "read miss" in text and "2 + 2n" in text


def test_table1_identities(benchmark):
    def check():
        # A dirty block has one cached copy, so the dirty rows never
        # depend on home locality beyond the table's explicit split.
        for dc in range(4):
            remote_dirty = table1_charge(OpClass.READ_MISS, False, True, dc)
            assert remote_dirty.short == remote_dirty.data == 1 + dc
        # Write hits move no data, ever.
        for home_local in (True, False):
            for dc in range(4):
                c = table1_charge(OpClass.WRITE_HIT, home_local, False, dc)
                assert c.data == 0
        # Local operations are never costlier than remote ones.
        for op in OpClass:
            for dirty in (False, True):
                if op is OpClass.WRITE_HIT and dirty:
                    continue
                for dc in range(4):
                    local = table1_charge(op, True, dirty, dc)
                    remote = table1_charge(op, False, dirty, dc)
                    assert local.total <= remote.total
        return True

    assert run_once(benchmark, check)


def test_charge_function_throughput(benchmark):
    """Time the cost function over every input class (hot path)."""
    cases = [
        (op, home, dirty, dc)
        for op in OpClass
        for home in (True, False)
        for dirty in ((False,) if op is OpClass.WRITE_HIT else (False, True))
        for dc in range(8)
    ]

    def charge_all():
        total = Charge(0, 0)
        for op, home, dirty, dc in cases:
            total = total + table1_charge(op, home, dirty, dc)
        return total

    total = benchmark(charge_all)
    assert total.total > 0
